// Package simnet simulates a multi-node HPC interconnect inside one
// process. It substitutes for the Cray Aries network plus vendor
// communication runtimes used in the paper's evaluation: each simulated
// "rank" is an in-process entity, and messages between ranks traverse a
// configurable latency/bandwidth/congestion cost model.
//
// The simulation preserves the behaviours the paper's results hinge on:
// message transfer takes wall-clock time proportional to alpha + bytes/beta,
// many concurrent messages to one destination contend (modelling NIC and
// network congestion — the effect that makes flat all-to-alls collapse at
// scale), and delivery is asynchronous with respect to the sender, so
// schedulers that overlap communication with computation really do hide
// latency.
package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/spin"
	"repro/internal/trace"
)

// CostModel parameterizes simulated communication timing. The zero value
// is a zero-cost network with synchronous in-line delivery — deterministic
// and fast, ideal for unit tests.
type CostModel struct {
	// Alpha is the fixed per-message latency.
	Alpha time.Duration
	// BytesPerSec is the link bandwidth; zero means infinite.
	BytesPerSec float64
	// CongestWindow is how many in-flight messages a destination absorbs
	// at full speed; beyond it each additional message pays CongestPenalty.
	// Zero disables congestion modelling.
	CongestWindow int
	// CongestPenalty is the extra delay per excess in-flight message.
	CongestPenalty time.Duration

	// RanksPerNode groups consecutive ranks onto "nodes": traffic between
	// ranks of the same node uses the (cheap) local parameters and is
	// exempt from congestion, like shared-memory transports in real
	// communication runtimes. Zero means every rank is its own node.
	RanksPerNode int
	// LocalAlpha is the fixed latency for same-node messages.
	LocalAlpha time.Duration
	// LocalBytesPerSec is the same-node bandwidth; zero means infinite.
	LocalBytesPerSec float64
}

// SameNode reports whether two ranks share a node under this model.
func (c CostModel) SameNode(a, b int) bool {
	if a == b {
		return true
	}
	return c.RanksPerNode > 1 && a/c.RanksPerNode == b/c.RanksPerNode
}

// DelayBetween computes the transfer delay from src to dst for a message
// of the given size, honouring node locality.
func (c CostModel) DelayBetween(src, dst, bytes int) time.Duration {
	if c.SameNode(src, dst) {
		d := c.LocalAlpha
		if c.LocalBytesPerSec > 0 {
			d += time.Duration(float64(bytes) / c.LocalBytesPerSec * float64(time.Second))
		}
		return d
	}
	return c.Delay(bytes)
}

// Delay computes the base transfer delay for a message of the given size
// (excluding congestion, which depends on instantaneous load).
func (c CostModel) Delay(bytes int) time.Duration {
	d := c.Alpha
	if c.BytesPerSec > 0 {
		d += time.Duration(float64(bytes) / c.BytesPerSec * float64(time.Second))
	}
	return d
}

// Zero reports whether the model is free (messages deliver inline).
func (c CostModel) Zero() bool {
	return c.Alpha == 0 && c.BytesPerSec == 0 && c.CongestWindow == 0
}

// Message is a delivered envelope.
type Message struct {
	Src, Dst, Tag int
	Data          []byte
}

// Wildcards for matching receives.
const (
	AnySource = -1
	AnyTag    = -1
)

// recvReq is a posted receive awaiting a matching message.
type recvReq struct {
	src, tag int
	deliver  func(Message) // invoked exactly once, outside the mailbox lock
}

func (r *recvReq) matches(m Message) bool {
	return (r.src == AnySource || r.src == m.Src) && (r.tag == AnyTag || r.tag == m.Tag)
}

// mailbox holds one rank's undelivered messages and posted receives.
// Matching follows MPI rules: messages from one (src, tag) pair are matched
// in arrival order against receives in post order.
type mailbox struct {
	mu   sync.Mutex
	msgs []Message
	reqs []*recvReq
}

// deliver matches m against posted receives or queues it.
func (b *mailbox) deliver(m Message) {
	b.mu.Lock()
	for i, r := range b.reqs {
		if r.matches(m) {
			b.reqs = append(b.reqs[:i], b.reqs[i+1:]...)
			b.mu.Unlock()
			r.deliver(m)
			return
		}
	}
	b.msgs = append(b.msgs, m)
	b.mu.Unlock()
}

// post matches a receive against queued messages or queues it.
func (b *mailbox) post(r *recvReq) {
	b.mu.Lock()
	for i, m := range b.msgs {
		if r.matches(m) {
			b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
			b.mu.Unlock()
			r.deliver(m)
			return
		}
	}
	b.reqs = append(b.reqs, r)
	b.mu.Unlock()
}

// probe reports whether a matching message is queued, without removing it.
func (b *mailbox) probe(src, tag int) (Message, bool) {
	r := recvReq{src: src, tag: tag}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.msgs {
		if r.matches(m) {
			return m, true
		}
	}
	return Message{}, false
}

// pairLink serializes deliveries for one (src, dst) pair so that per-pair
// FIFO ordering — an MPI guarantee — holds even under the latency model.
// Messages pipeline: a message's arrival time is max(previous arrival,
// send time + delay), matching a network that keeps packets in order while
// overlapping transfers.
type pairLink struct {
	mu          sync.Mutex
	q           []scheduledMsg
	running     bool
	lastArrival time.Time
}

type scheduledMsg struct {
	m       Message
	arrival time.Time
}

// Fabric is a simulated interconnect joining n ranks.
type Fabric struct {
	n        int
	cost     CostModel
	boxes    []*mailbox
	links    []pairLink     // [src*n+dst]
	inflight []atomic.Int64 // per destination
	barrier  *Barrier

	// statistics
	sent      atomic.Int64
	sentBytes atomic.Int64

	// tracer, when set, receives a message event per send and per delivery.
	// Sends run on arbitrary goroutines (runtime workers, drain goroutines,
	// user code), so events go through the tracer's external ring.
	tracer atomic.Pointer[trace.Tracer]
}

// NewFabric creates a fabric with n ranks and the given cost model.
func NewFabric(n int, cost CostModel) *Fabric {
	if n <= 0 {
		panic(fmt.Sprintf("simnet: fabric needs at least 1 rank, got %d", n))
	}
	f := &Fabric{n: n, cost: cost, barrier: NewBarrier(n)}
	f.boxes = make([]*mailbox, n)
	for i := range f.boxes {
		f.boxes[i] = &mailbox{}
	}
	f.links = make([]pairLink, n*n)
	f.inflight = make([]atomic.Int64, n)
	return f
}

// SetTracer attaches (or, with nil, detaches) a tracer whose external ring
// records one EvMsgSend per Send and one EvMsgRecv per mailbox delivery.
// Safe to call concurrently with traffic.
func (f *Fabric) SetTracer(tr *trace.Tracer) { f.tracer.Store(tr) }

// traceMsg records a message event: Task packs src<<32|dst, Arg is bytes.
func (f *Fabric) traceMsg(k trace.Kind, src, dst, bytes int) {
	if tr := f.tracer.Load(); tr != nil && tr.Enabled() {
		tr.RecordExternal(k, trace.NoPlace, uint64(uint32(src))<<32|uint64(uint32(dst)), uint64(bytes))
	}
}

// Size returns the number of ranks.
func (f *Fabric) Size() int { return f.n }

// Cost returns the fabric's cost model.
func (f *Fabric) Cost() CostModel { return f.cost }

// checkRank panics on out-of-range ranks (programming error).
func (f *Fabric) checkRank(r int) {
	if r < 0 || r >= f.n {
		panic(fmt.Sprintf("simnet: rank %d out of range [0,%d)", r, f.n))
	}
}

// Send transmits data from src to dst with the given tag. The data is
// copied before Send returns, so the caller may immediately reuse the
// buffer (eager-send semantics). Delivery happens after the modelled
// delay, asynchronously unless the cost model is zero.
func (f *Fabric) Send(src, dst, tag int, data []byte) {
	f.checkRank(src)
	f.checkRank(dst)
	buf := make([]byte, len(data))
	copy(buf, data)
	m := Message{Src: src, Dst: dst, Tag: tag, Data: buf}
	f.sent.Add(1)
	f.sentBytes.Add(int64(len(data)))
	f.traceMsg(trace.EvMsgSend, src, dst, len(data))
	if f.cost.Zero() {
		f.boxes[dst].deliver(m)
		f.traceMsg(trace.EvMsgRecv, src, dst, len(data))
		return
	}
	delay := f.cost.DelayBetween(src, dst, len(data))
	congest := f.cost.CongestWindow > 0 && !f.cost.SameNode(src, dst)
	if congest {
		excess := f.inflight[dst].Add(1) - int64(f.cost.CongestWindow)
		if excess > 0 {
			delay += time.Duration(excess) * f.cost.CongestPenalty
		}
	}
	link := &f.links[src*f.n+dst]
	link.mu.Lock()
	arrival := time.Now().Add(delay)
	if arrival.Before(link.lastArrival) {
		arrival = link.lastArrival
	}
	link.lastArrival = arrival
	link.q = append(link.q, scheduledMsg{m: m, arrival: arrival})
	if !link.running {
		link.running = true
		go f.drainLink(link, dst)
	}
	link.mu.Unlock()
}

// drainLink delivers one pair's messages in order at their arrival times.
func (f *Fabric) drainLink(link *pairLink, dst int) {
	for {
		link.mu.Lock()
		if len(link.q) == 0 {
			link.running = false
			link.mu.Unlock()
			return
		}
		sm := link.q[0]
		link.q = link.q[1:]
		link.mu.Unlock()

		spin.Until(sm.arrival)
		f.boxes[dst].deliver(sm.m)
		f.traceMsg(trace.EvMsgRecv, sm.m.Src, dst, len(sm.m.Data))
		if f.cost.CongestWindow > 0 && !f.cost.SameNode(sm.m.Src, dst) {
			f.inflight[dst].Add(-1)
		}
	}
}

// Recv blocks until a message matching (src, tag) — with AnySource/AnyTag
// wildcards — arrives at dst, and returns it.
func (f *Fabric) Recv(dst, src, tag int) Message {
	f.checkRank(dst)
	ch := make(chan Message, 1)
	f.boxes[dst].post(&recvReq{src: src, tag: tag, deliver: func(m Message) { ch <- m }})
	return <-ch
}

// RecvAsync registers fn to be invoked exactly once with the next message
// matching (src, tag) at dst. fn runs on the delivering goroutine (or
// inline if a message is already queued); it must not block.
func (f *Fabric) RecvAsync(dst, src, tag int, fn func(Message)) {
	f.checkRank(dst)
	f.boxes[dst].post(&recvReq{src: src, tag: tag, deliver: fn})
}

// TryRecv returns a matching queued message if one is available.
func (f *Fabric) TryRecv(dst, src, tag int) (Message, bool) {
	f.checkRank(dst)
	b := f.boxes[dst]
	r := recvReq{src: src, tag: tag}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, m := range b.msgs {
		if r.matches(m) {
			b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

// Probe reports whether a matching message is queued at dst without
// consuming it.
func (f *Fabric) Probe(dst, src, tag int) (Message, bool) {
	f.checkRank(dst)
	return f.boxes[dst].probe(src, tag)
}

// Barrier blocks until all n ranks have entered the barrier.
func (f *Fabric) Barrier() { f.barrier.Await() }

// BarrierAsync registers a barrier arrival and invokes fn when all ranks
// have arrived, without blocking the caller.
func (f *Fabric) BarrierAsync(fn func()) { f.barrier.Arrive(fn) }

// Stats returns cumulative message and byte counts.
func (f *Fabric) Stats() (messages, bytes int64) {
	return f.sent.Load(), f.sentBytes.Load()
}

// Barrier is a reusable (generation-counted) barrier for n participants.
// Participants may arrive blocking (Await) or asynchronously (Arrive with
// a completion callback); the two styles compose within one generation.
type Barrier struct {
	mu    sync.Mutex
	n     int
	count int
	gen   uint64
	cbs   []func()
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(n int) *Barrier {
	return &Barrier{n: n}
}

// Await blocks until n participants have entered the current generation.
func (b *Barrier) Await() {
	done := make(chan struct{})
	b.Arrive(func() { close(done) })
	<-done
}

// Arrive registers one arrival in the current generation and invokes fn
// (if non-nil) when the generation completes. The last arriver runs all
// callbacks on its own goroutine. Arrive never blocks, which lets runtime
// schedulers keep their workers busy while a barrier is pending — the
// deadlock-avoidance property the HiPER modules rely on.
func (b *Barrier) Arrive(fn func()) {
	b.mu.Lock()
	if fn != nil {
		b.cbs = append(b.cbs, fn)
	}
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		cbs := b.cbs
		b.cbs = nil
		b.mu.Unlock()
		for _, cb := range cbs {
			cb()
		}
		return
	}
	b.mu.Unlock()
}
