// Package simnet is the compatibility facade over the pluggable
// transport layer in internal/fabric. Historically it owned the
// cost-modeled interconnect simulation; that machinery now lives in
// fabric (as the Sim backend of the Transport interface) so that
// library modules can also run over other backends — notably the
// zero-cost Inline transport for deterministic tests. The aliases here
// keep the original simnet API (CostModel, Fabric, Barrier, wildcard
// constants) working for existing workloads and benchmarks.
//
// New code that needs a transport should import internal/fabric
// directly; simnet remains the convenient name for "a simulated
// network with this cost model".
package simnet

import "repro/internal/fabric"

// CostModel parameterizes the simulated interconnect. See
// fabric.CostModel for the field semantics (alpha/beta terms,
// congestion window and penalty, node locality).
type CostModel = fabric.CostModel

// Message is a delivered two-sided message.
type Message = fabric.Message

// Fabric is the cost-modeled transport backend (fabric.Sim). All of the
// Transport interface — Send/Recv with tag and source matching,
// one-sided Put/Get, tracing, statistics — is available on it.
type Fabric = fabric.Sim

// Barrier is a reusable generation-counted barrier.
type Barrier = fabric.Barrier

// Wildcards for Recv matching.
const (
	AnySource = fabric.AnySource
	AnyTag    = fabric.AnyTag
)

// NewFabric creates a simulated interconnect with n ranks and the given
// cost model.
func NewFabric(n int, cost CostModel) *Fabric { return fabric.NewSim(n, cost) }

// NewBarrier creates a barrier for n participants.
func NewBarrier(n int) *Barrier { return fabric.NewBarrier(n) }
