// Package hipershmem is the HiPER OpenSHMEM module ("AsyncSHMEM").
//
// OpenSHMEM v1.3 makes no guarantees about thread safety; scheduling all
// SHMEM calls as tasks on the HiPER runtime makes multi-threaded use safe
// and standard-compliant. Round-trip APIs (Get, atomics) are taskified at
// the Interconnect place; one-sided puts complete locally and are issued
// inline.
//
// The module also adds the paper's novel API, AsyncWhen (shmem_async_when):
// where the specification's wait APIs block a thread until a remote put
// changes local memory, AsyncWhen predicates a task's execution on the
// condition instead, offloading the polling to the HiPER runtime — the
// exact mechanism the paper's Graph500 implementation uses to eliminate
// application-level polling loops.
package hipershmem

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/shmem"
	"repro/internal/spin"
	"repro/internal/stats"
)

// ModuleName is the name this module registers under.
const ModuleName = "shmem"

// Options tunes module behaviour.
type Options struct {
	// PollInterval bounds CPU burned on empty AsyncWhen polling rounds.
	// Default 20µs.
	PollInterval time.Duration
}

// Module is the AsyncSHMEM module bound to one PE.
type Module struct {
	pe   *shmem.PE
	opts Options

	rt  *core.Runtime
	nic *platform.Place

	mu           sync.Mutex
	conds        []*whenCond
	pollerActive bool
}

// whenCond is one registered AsyncWhen condition.
type whenCond struct {
	arr  *shmem.Int64Array
	off  int
	cmp  shmem.Cmp
	val  int64
	prom *core.Promise
}

// New creates the module for one PE.
func New(pe *shmem.PE, opts *Options) *Module {
	m := &Module{pe: pe}
	if opts != nil {
		m.opts = *opts
	}
	if m.opts.PollInterval <= 0 {
		m.opts.PollInterval = 20 * time.Microsecond
	}
	return m
}

// Name implements modules.Module.
func (m *Module) Name() string { return ModuleName }

// Init asserts that an Interconnect place exists and is covered.
func (m *Module) Init(rt *core.Runtime) error {
	nic := rt.Model().FirstByKind(platform.KindInterconnect)
	if nic == nil {
		return fmt.Errorf("hipershmem: platform model has no %q place", platform.KindInterconnect)
	}
	if !rt.Model().CoveredPlaces()[nic.ID] {
		return fmt.Errorf("hipershmem: interconnect place %v is on no worker's pop or steal path", nic)
	}
	m.rt = rt
	m.nic = nic
	return nil
}

// Finalize implements modules.Module.
func (m *Module) Finalize() {}

// PE returns the wrapped processing element.
func (m *Module) PE() *shmem.PE { return m.pe }

// Rank returns the caller's PE number.
func (m *Module) Rank() int { return m.pe.Rank() }

// Size returns the job size.
func (m *Module) Size() int { return m.pe.Size() }

// taskify runs fn at the Interconnect place, descheduling the caller. The
// underlying call may block (a contended lock, a wait-until), so the NIC
// task shunts it onto a proxy goroutine and waits on its future; worker
// substitution keeps the Interconnect place serviced meanwhile (see the
// MPI module's taskify for the full rationale).
func (m *Module) taskify(c *core.Ctx, api string, fn func()) {
	defer stats.Track(ModuleName, api)()
	f := c.AsyncFutureAt(m.nic, func(cc *core.Ctx) any {
		done := core.NewPromise(m.rt)
		go func() {
			fn()
			done.Put(nil)
		}()
		cc.Wait(done.Future())
		return nil
	})
	c.Wait(f)
}

// Put issues shmem_put64 inline (it completes locally; remote delivery is
// asynchronous, to be fenced with Quiet or BarrierAll).
func (m *Module) Put(c *core.Ctx, a *shmem.Int64Array, dst, off int, vals []int64) {
	defer stats.Track(ModuleName, "shmem_put")()
	m.pe.Put(a, dst, off, vals)
}

// PutValue issues shmem_int64_p inline.
func (m *Module) PutValue(c *core.Ctx, a *shmem.Int64Array, dst, off int, val int64) {
	defer stats.Track(ModuleName, "shmem_p")()
	m.pe.PutValue(a, dst, off, val)
}

// PutBytes issues a bulk byte put inline.
func (m *Module) PutBytes(c *core.Ctx, a *shmem.ByteArray, dst, off int, vals []byte) {
	defer stats.Track(ModuleName, "shmem_putmem")()
	m.pe.PutBytes(a, dst, off, vals)
}

// Add issues a non-fetching atomic add inline.
func (m *Module) Add(c *core.Ctx, a *shmem.Int64Array, dst, off int, delta int64) {
	defer stats.Track(ModuleName, "shmem_atomic_add")()
	m.pe.Add(a, dst, off, delta)
}

// Get is taskified shmem_get64 (a blocking round trip). The transfer is
// reported to the scheduling policy as in-flight link work for its
// duration.
func (m *Module) Get(c *core.Ctx, a *shmem.Int64Array, src, off, n int) []int64 {
	var out []int64
	cost := float64(8*n) / 1024
	m.rt.HintInFlight(m.nic, cost)
	m.taskify(c, "shmem_get", func() { out = m.pe.Get(a, src, off, n) })
	m.rt.HintInFlight(m.nic, -cost)
	return out
}

// GetBytes is taskified bulk byte get.
func (m *Module) GetBytes(c *core.Ctx, a *shmem.ByteArray, src, off, n int) []byte {
	var out []byte
	cost := float64(n) / 1024
	m.rt.HintInFlight(m.nic, cost)
	m.taskify(c, "shmem_getmem", func() { out = m.pe.GetBytes(a, src, off, n) })
	m.rt.HintInFlight(m.nic, -cost)
	return out
}

// FetchAdd is taskified shmem_int64_atomic_fetch_add.
func (m *Module) FetchAdd(c *core.Ctx, a *shmem.Int64Array, dst, off int, delta int64) int64 {
	var out int64
	m.taskify(c, "shmem_atomic_fetch_add", func() { out = m.pe.FetchAdd(a, dst, off, delta) })
	return out
}

// CompareSwap is taskified shmem_int64_atomic_compare_swap.
func (m *Module) CompareSwap(c *core.Ctx, a *shmem.Int64Array, dst, off int, cond, val int64) int64 {
	var out int64
	m.taskify(c, "shmem_atomic_compare_swap", func() { out = m.pe.CompareSwap(a, dst, off, cond, val) })
	return out
}

// GetFuture is an asynchronous get: it returns immediately with a future
// satisfied with the fetched []int64.
func (m *Module) GetFuture(c *core.Ctx, a *shmem.Int64Array, src, off, n int) *core.Future {
	return c.AsyncFutureAt(m.nic, func(*core.Ctx) any {
		//hiperlint:ignore blocking-in-task round trip runs at the dedicated NIC place, whose worker is the communication proxy and may block by design
		return m.pe.Get(a, src, off, n)
	})
}

// FetchAddFuture is an asynchronous fetch-add returning a future of int64.
func (m *Module) FetchAddFuture(c *core.Ctx, a *shmem.Int64Array, dst, off int, delta int64) *core.Future {
	return c.AsyncFutureAt(m.nic, func(*core.Ctx) any {
		//hiperlint:ignore blocking-in-task round trip runs at the dedicated NIC place, whose worker is the communication proxy and may block by design
		return m.pe.FetchAdd(a, dst, off, delta)
	})
}

// SetLock is taskified shmem_set_lock: the calling task is descheduled —
// not a worker blocked — while the (possibly contended) distributed lock
// is acquired.
func (m *Module) SetLock(c *core.Ctx, l *shmem.Lock) {
	m.taskify(c, "shmem_set_lock", func() { m.pe.SetLock(l) })
}

// ClearLock is taskified shmem_clear_lock.
func (m *Module) ClearLock(c *core.Ctx, l *shmem.Lock) {
	m.taskify(c, "shmem_clear_lock", func() { m.pe.ClearLock(l) })
}

// Quiet is taskified shmem_quiet.
func (m *Module) Quiet(c *core.Ctx) {
	m.taskify(c, "shmem_quiet", func() { m.pe.Quiet() })
}

// BarrierAll is shmem_barrier_all: the calling task is descheduled until
// every PE arrives. Arrival is asynchronous so the barrier never stalls
// the worker servicing this PE's AsyncWhen poller — other PEs' arrivals
// may depend on conditions our poller must fire.
func (m *Module) BarrierAll(c *core.Ctx) {
	defer stats.Track(ModuleName, "shmem_barrier_all")()
	c.Wait(m.BarrierAllFuture(c))
}

// BarrierAllFuture is the nonblocking barrier: the returned future is
// satisfied when all PEs arrive (with this PE's outstanding puts quieted).
func (m *Module) BarrierAllFuture(c *core.Ctx) *core.Future {
	prom := core.NewPromise(m.rt)
	m.pe.BarrierAllAsync(func() { prom.Put(nil) })
	return prom.Future()
}

// Broadcast is taskified shmem_broadcast64.
func (m *Module) Broadcast(c *core.Ctx, dst, src *shmem.Int64Array, nelems, root int) {
	m.taskify(c, "shmem_broadcast", func() { m.pe.Broadcast(dst, src, nelems, root) })
}

// ToAll is taskified shmem reduction-to-all.
func (m *Module) ToAll(c *core.Ctx, dst, src *shmem.Int64Array, nelems int, kind shmem.ReduceKind) {
	m.taskify(c, "shmem_to_all", func() { m.pe.ToAll(dst, src, nelems, kind) })
}

// WaitUntil is the specification's blocking wait, taskified so the calling
// task is descheduled rather than a thread spun. Prefer AsyncWhen.
func (m *Module) WaitUntil(c *core.Ctx, a *shmem.Int64Array, off int, cmp shmem.Cmp, val int64) {
	c.Wait(m.WhenFuture(c, a, off, cmp, val))
}

// AsyncWhen is the paper's shmem_async_when: it makes body's execution
// predicated on the calling PE's local element at off satisfying cmp
// against val (typically made true by a remote put). The polling is
// offloaded to the HiPER runtime's poller task.
func (m *Module) AsyncWhen(c *core.Ctx, a *shmem.Int64Array, off int, cmp shmem.Cmp, val int64, body func(*core.Ctx)) {
	defer stats.Track(ModuleName, "shmem_async_when")()
	f := m.WhenFuture(c, a, off, cmp, val)
	c.AsyncAwait(body, f)
}

// WhenFuture returns a future satisfied when the calling PE's local
// element at off satisfies cmp against val.
func (m *Module) WhenFuture(c *core.Ctx, a *shmem.Int64Array, off int, cmp shmem.Cmp, val int64) *core.Future {
	prom := core.NewPromise(m.rt)
	// Fast path: already satisfied.
	if cmp.Eval(a.Peek(m.pe.Rank(), off), val) {
		prom.Put(a.Peek(m.pe.Rank(), off))
		return prom.Future()
	}
	m.mu.Lock()
	m.conds = append(m.conds, &whenCond{arr: a, off: off, cmp: cmp, val: val, prom: prom})
	spawn := !m.pollerActive
	if spawn {
		m.pollerActive = true
	}
	m.mu.Unlock()
	if spawn {
		c.AsyncDetachedAt(m.nic, m.poll)
	}
	return prom.Future()
}

// poll tests registered conditions, satisfies those that hold, and yields
// while any remain.
func (m *Module) poll(c *core.Ctx) {
	me := m.pe.Rank()
	m.mu.Lock()
	var still []*whenCond
	var fired []*whenCond
	for _, wc := range m.conds {
		cur := wc.arr.Peek(me, wc.off)
		if wc.cmp.Eval(cur, wc.val) {
			fired = append(fired, wc)
		} else {
			still = append(still, wc)
		}
	}
	m.conds = still
	remaining := len(still)
	if remaining == 0 {
		m.pollerActive = false
	}
	m.mu.Unlock()

	for _, wc := range fired {
		c.Put(wc.prom, wc.arr.Peek(me, wc.off))
	}
	if remaining > 0 {
		if len(fired) == 0 {
			spin.Sleep(m.opts.PollInterval) //hiperlint:ignore raw-delay-outside-fabric poller back-off pacing, not a modelled transfer
		}
		c.Yield(m.poll)
	}
}
