package hipershmem

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/hiper"
	"repro/internal/core"
	"repro/internal/modules"
	"repro/internal/platform"
	"repro/internal/shmem"
	"repro/internal/simnet"
)

// job boots one runtime + AsyncSHMEM module per PE and runs fn per PE.
func job(t testing.TB, pes, workers int, cost simnet.CostModel,
	fn func(c *core.Ctx, m *Module, w *shmem.World)) {
	t.Helper()
	world := shmem.NewWorld(pes, cost)
	var wg sync.WaitGroup
	for r := 0; r < pes; r++ {
		rt, err := core.New(platform.Default(workers), nil)
		if err != nil {
			t.Fatal(err)
		}
		m := New(world.PE(r), nil)
		modules.MustInstall(rt, m)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt.Launch(func(c *core.Ctx) { fn(c, m, world) })
			rt.Shutdown()
		}()
	}
	wg.Wait()
}

// newRT builds an n-worker runtime through the public facade, the only
// default-model constructor since the deprecated shims were removed.
func newRT(t testing.TB, n int) *core.Runtime {
	t.Helper()
	rt, err := hiper.New(hiper.WithWorkers(n))
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestInitRequiresInterconnect(t *testing.T) {
	mdl := platform.NewModel()
	mem := mdl.AddPlace("sysmem0", platform.KindSysMem)
	mdl.AddWorker([]int{mem.ID}, []int{mem.ID})
	rt, err := core.New(mdl, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	w := shmem.NewWorld(1, simnet.CostModel{})
	if err := modules.Install(rt, New(w.PE(0), nil)); err == nil {
		t.Fatal("Init must fail without an interconnect place")
	}
}

func TestPutBarrierVisibility(t *testing.T) {
	const n = 4
	world := shmem.NewWorld(n, simnet.CostModel{Alpha: time.Millisecond})
	arr := world.AllocInt64(n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		rt := newRT(t, 2)
		m := New(world.PE(r), nil)
		modules.MustInstall(rt, m)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rt.Launch(func(c *core.Ctx) {
				for dst := 0; dst < n; dst++ {
					m.PutValue(c, arr, dst, r, int64(r+1))
				}
				m.BarrierAll(c)
				loc := arr.Local(r)
				for s := 0; s < n; s++ {
					if loc[s] != int64(s+1) {
						t.Errorf("PE %d slot %d = %d", r, s, loc[s])
					}
				}
			})
			rt.Shutdown()
		}(r)
	}
	wg.Wait()
}

func TestTaskifiedGetAndAtomics(t *testing.T) {
	const n = 3
	var arr *shmem.Int64Array
	var once sync.Once
	var counter atomic.Int64
	job(t, n, 2, simnet.CostModel{}, func(c *core.Ctx, m *Module, w *shmem.World) {
		once.Do(func() {
			arr = w.AllocInt64(8)
			copy(arr.Local(0), []int64{5, 6, 7, 8})
		})
		m.BarrierAll(c) // everyone sees the allocation
		got := m.Get(c, arr, 0, 1, 2)
		if got[0] != 6 || got[1] != 7 {
			t.Errorf("PE %d Get = %v", m.Rank(), got)
		}
		old := m.FetchAdd(c, arr, 0, 7, 1)
		counter.Add(1)
		_ = old
		m.BarrierAll(c)
		if m.Rank() == 0 && arr.Local(0)[7] != n {
			t.Errorf("fetchadd total = %d", arr.Local(0)[7])
		}
	})
	if counter.Load() != n {
		t.Fatal("not all PEs ran")
	}
}

func TestCompareSwapThroughModule(t *testing.T) {
	job(t, 2, 2, simnet.CostModel{}, func(c *core.Ctx, m *Module, w *shmem.World) {
		if m.Rank() != 0 {
			return
		}
		arr := w.AllocInt64(1)
		if old := m.CompareSwap(c, arr, 1, 0, 0, 9); old != 0 {
			t.Errorf("CAS old = %d", old)
		}
		if arr.Local(1)[0] != 9 {
			t.Error("CAS did not write")
		}
	})
}

func TestAsyncWhenFiresOnRemotePut(t *testing.T) {
	const n = 2
	world := shmem.NewWorld(n, simnet.CostModel{Alpha: time.Millisecond})
	arr := world.AllocInt64(1)
	var fired atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		rt := newRT(t, 2)
		m := New(world.PE(r), nil)
		modules.MustInstall(rt, m)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rt.Launch(func(c *core.Ctx) {
				if r == 1 {
					done := core.NewPromise(c.Runtime())
					// Predicate a task on the remote put: the paper's
					// shmem_async_when(mem_addr, wait_for_val, body).
					m.AsyncWhen(c, arr, 0, shmem.CmpEQ, 42, func(cc *core.Ctx) {
						if arr.Peek(1, 0) != 42 {
							t.Error("body ran before condition held")
						}
						fired.Store(true)
						cc.Put(done, nil)
					})
					c.Wait(done.Future())
				} else {
					time.Sleep(3 * time.Millisecond)
					m.PutValue(c, arr, 1, 0, 42)
				}
			})
			rt.Shutdown()
		}(r)
	}
	wg.Wait()
	if !fired.Load() {
		t.Fatal("AsyncWhen body never ran")
	}
}

func TestAsyncWhenAlreadySatisfied(t *testing.T) {
	job(t, 1, 2, simnet.CostModel{}, func(c *core.Ctx, m *Module, w *shmem.World) {
		arr := w.AllocInt64(1)
		arr.Local(0)[0] = 5
		var ran atomic.Bool
		done := core.NewPromise(c.Runtime())
		m.AsyncWhen(c, arr, 0, shmem.CmpGE, 5, func(cc *core.Ctx) {
			ran.Store(true)
			cc.Put(done, nil)
		})
		c.Wait(done.Future())
		if !ran.Load() {
			t.Error("pre-satisfied AsyncWhen never fired")
		}
	})
}

func TestWaitUntilDeschedulesNotBlocks(t *testing.T) {
	// With a single worker, a truly blocking wait would deadlock: the same
	// worker must also run other tasks to satisfy the condition.
	world := shmem.NewWorld(1, simnet.CostModel{})
	arr := world.AllocInt64(1)
	rt := newRT(t, 1)
	m := New(world.PE(0), nil)
	modules.MustInstall(rt, m)
	done := make(chan struct{})
	go func() {
		rt.Launch(func(c *core.Ctx) {
			c.Finish(func(c *core.Ctx) {
				c.Async(func(cc *core.Ctx) {
					m.WaitUntil(cc, arr, 0, shmem.CmpEQ, 1)
				})
				c.Async(func(cc *core.Ctx) {
					time.Sleep(2 * time.Millisecond)
					m.PE().PutValue(arr, 0, 0, 1)
				})
			})
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("WaitUntil blocked the only worker (no descheduling)")
	}
	rt.Shutdown()
}

func TestManyWhenConditionsOnePoller(t *testing.T) {
	const conds = 32
	job(t, 2, 2, simnet.CostModel{Alpha: time.Millisecond}, func(c *core.Ctx, m *Module, w *shmem.World) {
		arrOnce.Do(func() { sharedArr = w.AllocInt64(conds) })
		m.BarrierAll(c)
		if m.Rank() == 1 {
			futs := make([]*core.Future, conds)
			for i := 0; i < conds; i++ {
				futs[i] = m.WhenFuture(c, sharedArr, i, shmem.CmpEQ, int64(i+1))
			}
			c.Wait(core.WhenAll(c.Runtime(), futs...))
			for i := 0; i < conds; i++ {
				if sharedArr.Peek(1, i) != int64(i+1) {
					t.Errorf("cond %d fired early", i)
				}
			}
		} else {
			for i := 0; i < conds; i++ {
				m.PutValue(c, sharedArr, 1, i, int64(i+1))
			}
		}
		m.BarrierAll(c)
	})
}

var (
	arrOnce   sync.Once
	sharedArr *shmem.Int64Array
)

func TestBroadcastToAllThroughModule(t *testing.T) {
	const n = 4
	var setup sync.Once
	var src, dst, red *shmem.Int64Array
	job(t, n, 2, simnet.CostModel{}, func(c *core.Ctx, m *Module, w *shmem.World) {
		setup.Do(func() {
			src = w.AllocInt64(1)
			dst = w.AllocInt64(1)
			red = w.AllocInt64(1)
			src.Local(2)[0] = 31
		})
		m.BarrierAll(c)
		m.Broadcast(c, dst, src, 1, 2)
		if m.Rank() != 2 && dst.Local(m.Rank())[0] != 31 {
			t.Errorf("PE %d broadcast = %d", m.Rank(), dst.Local(m.Rank())[0])
		}
		src.Local(m.Rank())[0] = int64(m.Rank() + 1)
		m.BarrierAll(c)
		m.ToAll(c, red, src, 1, shmem.ReduceSum)
		if red.Local(m.Rank())[0] != n*(n+1)/2 {
			t.Errorf("PE %d sum = %d", m.Rank(), red.Local(m.Rank())[0])
		}
	})
}
