package integration

import (
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/mpi"
	"repro/internal/shmem"
)

// These tests pin the tentpole property of the transport layer: library
// worlds composed over ONE fabric share its links, per-destination
// congestion windows, and locality domains, so traffic from one
// library slows another — exactly what co-scheduled libraries do on a
// real machine, and what three separate simulations can never show.

// TestWorldsShareOneFabric composes an MPI world and a SHMEM world over
// a single transport and moves data through both, checking that their
// traffic streams stay correctly demultiplexed (disjoint tag blocks)
// and that the shared transport's statistics see both libraries.
func TestWorldsShareOneFabric(t *testing.T) {
	const ranks = 4
	tr := fabric.NewSim(ranks, fabric.CostModel{Alpha: 5 * time.Microsecond})
	mworld := mpi.NewWorldOver(tr)
	sworld := shmem.NewWorldOver(tr)
	arr := sworld.AllocInt64(ranks)

	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comm := mworld.Comm(r)
			pe := sworld.PE(r)
			// SHMEM publishes r+1 to every PE; MPI allreduces the local
			// row sum. Both streams ride the same links concurrently.
			for dst := 0; dst < ranks; dst++ {
				pe.PutValue(arr, dst, r, int64(r+1))
			}
			pe.BarrierAll()
			var sum int64
			for _, v := range arr.Local(r) {
				sum += v
			}
			out := make([]byte, 8)
			comm.Allreduce(out, mpi.EncodeInt64s([]int64{sum}), mpi.SumInt64)
			const want = (1 + 2 + 3 + 4) * ranks
			if got := mpi.DecodeInt64s(out)[0]; got != want {
				t.Errorf("rank %d: cross-library reduce over shared fabric = %d, want %d", r, got, want)
			}
		}(r)
	}
	wg.Wait()

	if msgs, bytes := tr.Stats(); msgs == 0 || bytes == 0 {
		t.Errorf("shared transport stats empty: msgs=%d bytes=%d", msgs, bytes)
	}
}

// fanInCost is a deliberately congestion-dominated model: every message
// into an oversubscribed destination pays a steep per-excess penalty.
var fanInCost = fabric.CostModel{
	Alpha:          20 * time.Microsecond,
	CongestWindow:  1,
	CongestPenalty: 300 * time.Microsecond,
}

const (
	fanInRanks = 4
	fanInMsgs  = 8 // messages per non-root sender
)

// mpiFanIn drives every non-zero rank to send fanInMsgs messages to
// rank 0, which receives them all.
func mpiFanIn(w *mpi.World) {
	var wg sync.WaitGroup
	payload := make([]byte, 64)
	for r := 1; r < fanInRanks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comm := w.Comm(r)
			for i := 0; i < fanInMsgs; i++ {
				comm.Send(payload, 0, 7)
			}
		}(r)
	}
	root := w.Comm(0)
	buf := make([]byte, 64)
	for i := 0; i < (fanInRanks-1)*fanInMsgs; i++ {
		root.Recv(buf, mpi.AnySource, mpi.AnyTag)
	}
	wg.Wait()
}

// shmemFanIn drives every non-zero PE to put fanInMsgs values into PE
// 0's symmetric array, then fence with Quiet.
func shmemFanIn(w *shmem.World, arr *shmem.Int64Array) {
	var wg sync.WaitGroup
	for r := 1; r < fanInRanks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			pe := w.PE(r)
			for i := 0; i < fanInMsgs; i++ {
				pe.PutValue(arr, 0, r, int64(i))
			}
			pe.Quiet()
		}(r)
	}
	wg.Wait()
}

// TestSharedFabricCongestionCouplesLibraries runs the same mixed
// MPI+SHMEM fan-in twice: once with each library on its own private
// fabric, and once with both composed over a single shared fabric. The
// traffic is identical; only the sharing differs. On the shared fabric
// the two libraries' messages land in the same per-destination
// congestion window, so each library's fan-in sees roughly twice the
// inflight excess — the mixed run must be measurably slower. This is
// the observable guarantee behind "one endpoint per rank".
func TestSharedFabricCongestionCouplesLibraries(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive congestion measurement")
	}

	run := func(mw *mpi.World, sw *shmem.World) time.Duration {
		arr := sw.AllocInt64(fanInRanks)
		start := time.Now()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); mpiFanIn(mw) }()
		go func() { defer wg.Done(); shmemFanIn(sw, arr) }()
		wg.Wait()
		return time.Since(start)
	}

	// Best of a few trials on each side filters scheduler noise: the
	// congestion penalty is mechanical, so the fastest observed run is
	// the cleanest measurement of it.
	const trials = 3
	separate, shared := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < trials; i++ {
		if d := run(
			mpi.NewWorld(fanInRanks, fanInCost),
			shmem.NewWorld(fanInRanks, fanInCost),
		); d < separate {
			separate = d
		}
	}
	for i := 0; i < trials; i++ {
		tr := fabric.NewSim(fanInRanks, fanInCost)
		if d := run(mpi.NewWorldOver(tr), shmem.NewWorldOver(tr)); d < shared {
			shared = d
		}
	}

	t.Logf("fan-in elapsed: separate fabrics %v, shared fabric %v", separate, shared)
	// Steady-state inflight roughly doubles on the shared fabric, so the
	// congestion excess per message roughly doubles too. Demand only a
	// 1.2x separation to stay robust under -race and loaded CI machines.
	if shared < separate*6/5 {
		t.Errorf("shared-fabric fan-in (%v) not slower than separate fabrics (%v); cross-library congestion is not coupling", shared, separate)
	}
}
