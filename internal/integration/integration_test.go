// Package integration exercises cross-module composition — the paper's
// whole point: multiple discrete HPC libraries cooperating within a single
// process on one unified runtime, with dependencies expressed between
// components via futures.
package integration

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/hiper"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/hiperckpt"
	"repro/internal/hipercuda"
	"repro/internal/hipermpi"
	"repro/internal/hipershmem"
	"repro/internal/modules"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/shmem"
	"repro/internal/simnet"
)

// fullModel builds a platform with every place kind the standard modules
// need: CPU memory, GPU, NIC, and NVM.
func fullModel(t testing.TB, workers int) *platform.Model {
	t.Helper()
	m, err := platform.Generate(platform.MachineSpec{
		Sockets: 1, CoresPerSocket: workers, GPUs: 1, NVM: true, Interconnect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newRT builds an n-worker runtime through the public facade, the only
// default-model constructor since the deprecated shims were removed.
func newRT(t testing.TB, n int) *core.Runtime {
	t.Helper()
	rt, err := hiper.New(hiper.WithWorkers(n))
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestFourModulesOneRuntime installs MPI, SHMEM, CUDA, and checkpoint
// modules on a single runtime and runs a workload that crosses all of
// them: generate on GPU -> checkpoint -> exchange via MPI -> publish via
// SHMEM put -> AsyncWhen consumer.
func TestFourModulesOneRuntime(t *testing.T) {
	const ranks = 2
	cost := simnet.CostModel{Alpha: 200 * time.Microsecond}
	mworld := mpi.NewWorld(ranks, cost)
	sworld := shmem.NewWorld(ranks, cost)
	flag := sworld.AllocInt64(1)
	store := hiperckpt.NewStore(hiperckpt.StoreConfig{Alpha: time.Millisecond})

	var wg sync.WaitGroup
	var crossChecks atomic.Int64
	for r := 0; r < ranks; r++ {
		rt, err := core.New(fullModel(t, 2), nil)
		if err != nil {
			t.Fatal(err)
		}
		mm := hipermpi.New(mworld.Comm(r), nil)
		sm := hipershmem.New(sworld.PE(r), nil)
		cm := hipercuda.New(cuda.NewDevice(cuda.Config{SMs: 2, MemcpyAlpha: time.Millisecond}), nil)
		km := hiperckpt.New(store)
		for _, mod := range []modules.Module{mm, sm, cm, km} {
			modules.MustInstall(rt, mod)
		}
		if got := modules.Names(rt); len(got) != 4 {
			t.Fatalf("installed modules = %v", got)
		}

		wg.Add(1)
		go func(r int, rt *core.Runtime) {
			defer wg.Done()
			defer rt.Shutdown()
			rt.Launch(func(c *core.Ctx) {
				const n = 256
				// 1) Produce data on the GPU.
				buf := cm.MustMalloc(n)
				kern := cm.ForasyncCUDA(c, n, func(i int) {
					buf.Data()[i] = float64(r*1000 + i)
				})
				// 2) Checkpoint the device data (D2H chained on the kernel,
				//    checkpoint chained on the copy).
				host := make([]float64, n)
				d2h := cm.MemcpyD2HAwait(c, host, buf, 0, n, kern)
				ck := km.CheckpointAwait(c, "gpu-state", host, d2h)
				// 3) Exchange with the peer over MPI, chained on the D2H.
				peer := 1 - r
				recv := make([]byte, 8*n)
				rf := mm.Irecv(c, recv, peer, 0)
				// Encode AFTER d2h lands (encoding at call time would
				// capture the unfilled buffer).
				sf := c.AsyncFutureAwait(func(cc *core.Ctx) any {
					cc.Wait(mm.Isend(cc, mpi.EncodeFloat64s(host), peer, 0))
					return nil
				}, d2h)
				c.Wait(core.WhenAll(rt, rf, sf, ck))
				got := mpi.DecodeFloat64s(recv)
				if got[10] != float64(peer*1000+10) {
					t.Errorf("rank %d: MPI payload wrong: %v", r, got[10])
				}
				// 4) Publish completion via SHMEM; rank 0 awaits both flags
				//    with the novel AsyncWhen API.
				sm.Add(c, flag, 0, 0, 1)
				if r == 0 {
					done := core.NewPromise(rt)
					sm.AsyncWhen(c, flag, 0, shmem.CmpGE, ranks, func(cc *core.Ctx) {
						cc.Put(done, nil)
					})
					c.Wait(done.Future())
					crossChecks.Add(1)
				}
				// 5) Restore the checkpoint and verify.
				blob, ok := km.Restore(c, "gpu-state")
				if !ok || blob[5] == 0 {
					t.Errorf("rank %d: restore failed", r)
				}
			})
		}(r, rt)
	}
	wg.Wait()
	if crossChecks.Load() != 1 {
		t.Fatal("AsyncWhen completion never observed")
	}
}

// TestModuleDiscovery verifies the inter-module query mechanism the
// related-work section motivates (GPU-aware MPI).
func TestModuleDiscovery(t *testing.T) {
	rt, err := core.New(fullModel(t, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	world := mpi.NewWorld(1, simnet.CostModel{})
	mm := hipermpi.New(world.Comm(0), nil)
	modules.MustInstall(rt, mm)
	if mm.GPUAware() {
		t.Fatal("GPU-aware before CUDA module installed")
	}
	modules.MustInstall(rt, hipercuda.New(cuda.NewDevice(cuda.Config{}), nil))
	if !mm.GPUAware() {
		t.Fatal("GPU-aware discovery failed after CUDA module install")
	}
}

// TestUnifiedSchedulingInterleavesModules checks the unified-runtime
// property: compute tasks, MPI comm tasks, and GPU tasks all execute on
// the same worker pool (observed via the runtime's scheduler statistics).
func TestUnifiedSchedulingInterleavesModules(t *testing.T) {
	rt, err := core.New(fullModel(t, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	world := mpi.NewWorld(1, simnet.CostModel{})
	mm := hipermpi.New(world.Comm(0), nil)
	cm := hipercuda.New(cuda.NewDevice(cuda.Config{SMs: 2}), nil)
	modules.MustInstall(rt, mm)
	modules.MustInstall(rt, cm)

	rt.Launch(func(c *core.Ctx) {
		c.Finish(func(c *core.Ctx) {
			// Self-messaging comm tasks.
			buf := make([]byte, 8)
			for i := 0; i < 10; i++ {
				rf := mm.Irecv(c, buf, 0, i)
				c.Wait(mm.Isend(c, mpi.EncodeInt64s([]int64{int64(i)}), 0, i))
				c.Wait(rf)
			}
			// GPU tasks.
			b := cm.MustMalloc(64)
			c.Wait(cm.ForasyncCUDA(c, 64, func(i int) { b.Data()[i] = 1 }))
			// Plain compute tasks.
			c.Forasync(core.Range{Lo: 0, Hi: 100, Grain: 10}, func(*core.Ctx, int) {})
		})
	})
	s := rt.Stats()
	if s.TasksExecuted < 25 {
		t.Fatalf("expected many tasks on the unified pool, got %d", s.TasksExecuted)
	}
}

// TestBlockingCollectiveDoesNotStarvePoller reproduces (as a regression
// test) the deadlock class fixed during development: a blocking collective
// on the Interconnect-covering worker must not starve the module's poller
// or chained communication tasks.
func TestBlockingCollectiveDoesNotStarvePoller(t *testing.T) {
	const ranks = 3
	cost := simnet.CostModel{Alpha: 500 * time.Microsecond}
	world := mpi.NewWorld(ranks, cost)
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for r := 0; r < ranks; r++ {
			rt := newRT(t, 2)
			mm := hipermpi.New(world.Comm(r), nil)
			modules.MustInstall(rt, mm)
			wg.Add(1)
			go func(r int, rt *core.Runtime) {
				defer wg.Done()
				defer rt.Shutdown()
				rt.Launch(func(c *core.Ctx) {
					peer := (r + 1) % ranks
					prev := (r - 1 + ranks) % ranks
					for it := 0; it < 5; it++ {
						// Async ring exchange whose completion tasks need
						// the NIC worker...
						recv := make([]byte, 8)
						rf := mm.Irecv(c, recv, prev, 1)
						mm.Isend(c, mpi.EncodeInt64s([]int64{int64(it)}), peer, 1)
						// ...racing a blocking collective on the same worker.
						buf := make([]byte, 8)
						mm.Allreduce(c, buf, mpi.EncodeInt64s([]int64{1}), mpi.SumInt64)
						if got := mpi.DecodeInt64s(buf)[0]; got != ranks {
							t.Errorf("allreduce = %d", got)
						}
						c.Wait(rf)
					}
				})
			}(r, rt)
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("collective + async composition deadlocked")
	}
}

// TestSHMEMAndMPIInOneApp composes two communication libraries in one
// application (as HPGMG composes UPC++ and MPI in the paper).
func TestSHMEMAndMPIInOneApp(t *testing.T) {
	const ranks = 2
	mworld := mpi.NewWorld(ranks, simnet.CostModel{})
	sworld := shmem.NewWorld(ranks, simnet.CostModel{})
	arr := sworld.AllocInt64(ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		rt := newRT(t, 2)
		mm := hipermpi.New(mworld.Comm(r), nil)
		sm := hipershmem.New(sworld.PE(r), nil)
		modules.MustInstall(rt, mm)
		modules.MustInstall(rt, sm)
		wg.Add(1)
		go func(r int, rt *core.Runtime) {
			defer wg.Done()
			defer rt.Shutdown()
			rt.Launch(func(c *core.Ctx) {
				// SHMEM one-sided publish, MPI reduction over the published
				// values, all on one runtime.
				for dst := 0; dst < ranks; dst++ {
					sm.PutValue(c, arr, dst, r, int64(r+1))
				}
				sm.BarrierAll(c)
				local := arr.Local(r)
				sum := local[0] + local[1]
				out := make([]byte, 8)
				mm.Allreduce(c, out, mpi.EncodeInt64s([]int64{sum}), mpi.SumInt64)
				if got := mpi.DecodeInt64s(out)[0]; got != 6 { // (1+2) * 2 ranks
					t.Errorf("rank %d: cross-library reduce = %d", r, got)
				}
			})
		}(r, rt)
	}
	wg.Wait()
}
