package hiperupcxx

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/modules"
	"repro/internal/platform"
	"repro/internal/simnet"
	"repro/internal/upcxx"
)

// job boots one runtime + module per rank and runs fn per rank.
func job(t testing.TB, ranks, workers int, cost simnet.CostModel,
	fn func(c *core.Ctx, m *Module, w *upcxx.World)) {
	t.Helper()
	world := upcxx.NewWorld(ranks, cost)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		rt, err := core.New(platform.Default(workers), nil)
		if err != nil {
			t.Fatal(err)
		}
		m := New(world.Rank(r), nil)
		modules.MustInstall(rt, m)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt.Launch(func(c *core.Ctx) { fn(c, m, world) })
			rt.Shutdown()
		}()
	}
	wg.Wait()
}

func TestInitRequiresInterconnect(t *testing.T) {
	mdl := platform.NewModel()
	mem := mdl.AddPlace("sysmem0", platform.KindSysMem)
	mdl.AddWorker([]int{mem.ID}, []int{mem.ID})
	rt, err := core.New(mdl, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	w := upcxx.NewWorld(1, simnet.CostModel{})
	if err := modules.Install(rt, New(w.Rank(0), nil)); err == nil {
		t.Fatal("Init must fail without an interconnect place")
	}
}

func TestRPutFuture(t *testing.T) {
	var arr *upcxx.SharedArray
	var once sync.Once
	job(t, 2, 2, simnet.CostModel{Alpha: time.Millisecond}, func(c *core.Ctx, m *Module, w *upcxx.World) {
		once.Do(func() { arr = w.AllocShared(4) })
		m.Barrier(c)
		if m.ID() == 0 {
			f := m.RPut(c, arr, 1, 1, []float64{3.5, 4.5})
			c.Wait(f)
			if arr.Local(1)[1] != 3.5 {
				t.Error("rput future satisfied before remote completion")
			}
		}
		m.Barrier(c)
		if m.ID() == 1 && (arr.Local(1)[1] != 3.5 || arr.Local(1)[2] != 4.5) {
			t.Errorf("target block = %v", arr.Local(1)[:4])
		}
	})
}

func TestRGetFutureValue(t *testing.T) {
	var arr *upcxx.SharedArray
	var once sync.Once
	job(t, 2, 2, simnet.CostModel{}, func(c *core.Ctx, m *Module, w *upcxx.World) {
		once.Do(func() {
			arr = w.AllocShared(4)
			copy(arr.Local(0), []float64{1, 2, 3, 4})
		})
		m.Barrier(c)
		if m.ID() == 1 {
			got := c.Get(m.RGet(c, arr, 0, 1, 2)).([]float64)
			if got[0] != 2 || got[1] != 3 {
				t.Errorf("rget = %v", got)
			}
		}
		m.Barrier(c)
	})
}

func TestRPCExecutedByProgressPoller(t *testing.T) {
	// The key property: the target rank never calls Progress explicitly —
	// the module's poller discharges the progress obligation.
	var hit atomic.Int64
	job(t, 2, 2, simnet.CostModel{Alpha: time.Millisecond}, func(c *core.Ctx, m *Module, w *upcxx.World) {
		m.Barrier(c)
		if m.ID() == 0 {
			f := m.RPC(c, 1, func(target *upcxx.Rank) {
				if target.ID() != 1 {
					t.Error("rpc on wrong rank")
				}
				hit.Add(1)
			})
			c.Wait(f)
			if hit.Load() != 1 {
				t.Error("rpc future satisfied before execution")
			}
		}
		m.Barrier(c)
	})
	if hit.Load() != 1 {
		t.Fatalf("rpc executed %d times", hit.Load())
	}
}

func TestRPutAwaitChain(t *testing.T) {
	var arr *upcxx.SharedArray
	var once sync.Once
	job(t, 2, 2, simnet.CostModel{Alpha: time.Millisecond}, func(c *core.Ctx, m *Module, w *upcxx.World) {
		once.Do(func() { arr = w.AllocShared(2) })
		m.Barrier(c)
		if m.ID() == 0 {
			data := []float64{0}
			compute := c.AsyncFuture(func(*core.Ctx) any {
				time.Sleep(2 * time.Millisecond)
				data[0] = 77
				return nil
			})
			c.Wait(m.RPutAwait(c, arr, 1, 0, data, compute))
		}
		m.Barrier(c)
		if m.ID() == 1 && arr.Local(1)[0] != 77 {
			t.Errorf("RPutAwait wrote %v before dependency", arr.Local(1)[0])
		}
	})
}

func TestManyRPCsBothDirections(t *testing.T) {
	var count atomic.Int64
	job(t, 4, 2, simnet.CostModel{Alpha: 500 * time.Microsecond}, func(c *core.Ctx, m *Module, w *upcxx.World) {
		m.Barrier(c)
		futs := make([]*core.Future, 0, 12)
		for dst := 0; dst < 4; dst++ {
			if dst == m.ID() {
				continue
			}
			futs = append(futs, m.RPC(c, dst, func(*upcxx.Rank) { count.Add(1) }))
		}
		c.Wait(core.WhenAll(c.Runtime(), futs...))
		m.Barrier(c)
	})
	if count.Load() != 12 {
		t.Fatalf("rpcs executed = %d, want 12", count.Load())
	}
}
