// Package hiperupcxx is the HiPER UPC++ module. UPC++'s asynchronous
// one-sided operations and RPCs map naturally onto HiPER futures; the
// module additionally discharges UPC++'s progress obligation (inbound RPCs
// only execute inside upcxx::progress) with a poller task on the unified
// runtime, so applications never hand-roll progress loops.
package hiperupcxx

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/spin"
	"repro/internal/stats"
	"repro/internal/upcxx"
)

// ModuleName is the name this module registers under.
const ModuleName = "upcxx"

// Options tunes module behaviour.
type Options struct {
	// PollInterval bounds CPU burned on empty progress rounds. Default 20µs.
	PollInterval time.Duration
}

// Module is the HiPER UPC++ module bound to one rank.
type Module struct {
	rank *upcxx.Rank
	opts Options

	rt  *core.Runtime
	nic *platform.Place

	outstanding  atomic.Int64 // local ops awaiting completion
	mu           sync.Mutex
	pollerActive bool
	finalized    atomic.Bool
}

// New creates the module for one rank.
func New(rank *upcxx.Rank, opts *Options) *Module {
	m := &Module{rank: rank}
	if opts != nil {
		m.opts = *opts
	}
	if m.opts.PollInterval <= 0 {
		m.opts.PollInterval = 20 * time.Microsecond
	}
	return m
}

// Name implements modules.Module.
func (m *Module) Name() string { return ModuleName }

// Init asserts that an Interconnect place exists and is covered.
func (m *Module) Init(rt *core.Runtime) error {
	nic := rt.Model().FirstByKind(platform.KindInterconnect)
	if nic == nil {
		return fmt.Errorf("hiperupcxx: platform model has no %q place", platform.KindInterconnect)
	}
	if !rt.Model().CoveredPlaces()[nic.ID] {
		return fmt.Errorf("hiperupcxx: interconnect place %v is on no worker's pop or steal path", nic)
	}
	m.rt = rt
	m.nic = nic
	// Inbound RPCs only execute inside Progress; arm this rank's poller the
	// moment one arrives so targets never need explicit progress loops.
	m.rank.OnRPCEnqueued(func() {
		if m.finalized.Load() {
			return
		}
		m.armPollerExternal()
	})
	return nil
}

// armPollerExternal arms the poller from a non-worker goroutine (an RPC
// delivery callback).
func (m *Module) armPollerExternal() {
	m.mu.Lock()
	spawn := !m.pollerActive
	if spawn {
		m.pollerActive = true
	}
	m.mu.Unlock()
	if spawn {
		m.rt.SpawnDetachedAt(m.nic, m.poll)
	}
}

// Finalize stops the progress poller.
func (m *Module) Finalize() {
	m.finalized.Store(true)
}

// Rank returns the wrapped UPC++ rank.
func (m *Module) Rank() *upcxx.Rank { return m.rank }

// ID returns the caller's rank number.
func (m *Module) ID() int { return m.rank.ID() }

// Size returns the job size.
func (m *Module) Size() int { return m.rank.Size() }

// armPoller ensures the progress poller is running while work is pending.
func (m *Module) armPoller(c *core.Ctx) {
	m.mu.Lock()
	spawn := !m.pollerActive
	if spawn {
		m.pollerActive = true
	}
	m.mu.Unlock()
	if spawn {
		c.AsyncDetachedAt(m.nic, m.poll)
	}
}

// poll drives upcxx progress (executing inbound RPCs) and yields while
// local operations are outstanding or inbound RPCs remain.
func (m *Module) poll(c *core.Ctx) {
	ran := m.rank.Progress()
	again := !m.finalized.Load() &&
		(m.outstanding.Load() > 0 || m.rank.PendingRPCs())
	if !again {
		m.mu.Lock()
		// Re-check under the lock so an op registered concurrently cannot
		// strand itself without a poller.
		if m.outstanding.Load() > 0 || m.rank.PendingRPCs() {
			again = true
		} else {
			m.pollerActive = false
		}
		m.mu.Unlock()
	}
	if again {
		if ran == 0 {
			spin.Sleep(m.opts.PollInterval) //hiperlint:ignore raw-delay-outside-fabric poller back-off pacing, not a modelled transfer
		}
		c.Yield(m.poll)
	}
}

// RPut asynchronously writes vals into dst's block at off and returns a
// future satisfied on remote completion.
func (m *Module) RPut(c *core.Ctx, a *upcxx.SharedArray, dst, off int, vals []float64) *core.Future {
	defer stats.Track(ModuleName, "rput")()
	prom := core.NewPromise(m.rt)
	m.outstanding.Add(1)
	m.rank.RPut(a, dst, off, vals, func() {
		m.outstanding.Add(-1)
		prom.Put(nil)
	})
	return prom.Future()
}

// RPutAwait issues the rput only after all deps are satisfied.
func (m *Module) RPutAwait(c *core.Ctx, a *upcxx.SharedArray, dst, off int, vals []float64, deps ...*core.Future) *core.Future {
	out := core.NewPromise(m.rt)
	c.AsyncAwaitAt(m.nic, func(cc *core.Ctx) {
		m.RPut(cc, a, dst, off, vals).OnDone(func(any) { out.Put(nil) })
	}, deps...)
	return out.Future()
}

// RGet asynchronously reads n elements from src's block at off; the future
// is satisfied with the []float64 payload.
func (m *Module) RGet(c *core.Ctx, a *upcxx.SharedArray, src, off, n int) *core.Future {
	defer stats.Track(ModuleName, "rget")()
	prom := core.NewPromise(m.rt)
	m.outstanding.Add(1)
	m.rank.RGet(a, src, off, n, func(vals []float64) {
		m.outstanding.Add(-1)
		prom.Put(vals)
	})
	return prom.Future()
}

// RPC runs fn on the destination rank (inside its progress poller) and
// returns a future satisfied when the remote execution is acknowledged.
func (m *Module) RPC(c *core.Ctx, dst int, fn func(target *upcxx.Rank)) *core.Future {
	defer stats.Track(ModuleName, "rpc")()
	prom := core.NewPromise(m.rt)
	m.outstanding.Add(1)
	m.rank.RPC(dst, fn, func() {
		m.outstanding.Add(-1)
		prom.Put(nil)
	})
	m.armPoller(c)
	return prom.Future()
}

// Barrier is upcxx::barrier: the calling task is descheduled until every
// rank arrives. The arrival is asynchronous, so this rank's workers stay
// free to execute inbound RPCs that other ranks' arrivals may depend on —
// a blocking barrier on the NIC-servicing worker would deadlock exactly
// that composition.
func (m *Module) Barrier(c *core.Ctx) {
	defer stats.Track(ModuleName, "barrier")()
	prom := core.NewPromise(m.rt)
	m.rank.BarrierAsync(func() { prom.Put(nil) })
	c.Wait(prom.Future())
}

// BarrierFuture is the nonblocking barrier: the returned future is
// satisfied when all ranks arrive.
func (m *Module) BarrierFuture(c *core.Ctx) *core.Future {
	prom := core.NewPromise(m.rt)
	m.rank.BarrierAsync(func() { prom.Put(nil) })
	return prom.Future()
}
