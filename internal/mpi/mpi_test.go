package mpi

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simnet"
)

// runJob executes fn once per rank, concurrently, and waits for all.
func runJob(t testing.TB, n int, cost simnet.CostModel, fn func(c *Comm)) *World {
	t.Helper()
	w := NewWorld(n, cost)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fn(w.Comm(r))
		}(r)
	}
	wg.Wait()
	return w
}

func TestSendRecv(t *testing.T) {
	runJob(t, 2, simnet.CostModel{}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send([]byte("ping"), 1, 42)
		} else {
			buf := make([]byte, 16)
			st := c.Recv(buf, 0, 42)
			if st.Count != 4 || string(buf[:4]) != "ping" {
				t.Errorf("recv %q count=%d", buf[:st.Count], st.Count)
			}
		}
	})
}

func TestIsendIrecvWaitall(t *testing.T) {
	runJob(t, 2, simnet.CostModel{Alpha: time.Millisecond}, func(c *Comm) {
		peer := 1 - c.Rank()
		out := EncodeInt64s([]int64{int64(c.Rank()) + 100})
		in := make([]byte, 8)
		rs := c.Isend(out, peer, 1)
		rr := c.Irecv(in, peer, 1)
		Waitall(rs, rr)
		got := DecodeInt64s(in)[0]
		if got != int64(peer)+100 {
			t.Errorf("rank %d got %d", c.Rank(), got)
		}
	})
}

func TestRequestTestAndCallbacks(t *testing.T) {
	runJob(t, 2, simnet.CostModel{Alpha: 5 * time.Millisecond}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send([]byte("x"), 1, 0)
			return
		}
		buf := make([]byte, 4)
		req := c.Irecv(buf, 0, 0)
		if req.Test() {
			t.Error("request completed before message latency elapsed")
		}
		fired := make(chan Status, 1)
		req.OnComplete(func(st Status) { fired <- st })
		st := req.Wait()
		if st.Count != 1 {
			t.Errorf("count = %d", st.Count)
		}
		if !req.Test() {
			t.Error("Test false after Wait")
		}
		select {
		case <-fired:
		case <-time.After(time.Second):
			t.Error("OnComplete never fired")
		}
		// Callback registered after completion runs immediately.
		done := false
		req.OnComplete(func(Status) { done = true })
		if !done {
			t.Error("late OnComplete not run inline")
		}
	})
}

func TestFunneledModePanicsOnConcurrency(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{})
	c := w.Comm(0)
	c.InitThread(ThreadFunneled)
	// A blocking Recv occupies the communicator; a concurrent Send must panic.
	panicked := make(chan bool, 1)
	go func() {
		defer func() { panicked <- recover() != nil }()
		// This Recv blocks forever inside the enter/exit window.
		c.Recv(make([]byte, 1), 1, 0)
	}()
	time.Sleep(5 * time.Millisecond)
	func() {
		defer func() { panicked <- recover() != nil }()
		c.Send([]byte("x"), 1, 0)
	}()
	if !<-panicked {
		t.Fatal("expected a panic from concurrent funneled-mode calls")
	}
	// Unblock the pending Recv.
	w.Comm(1).Send([]byte("y"), 0, 0)
}

func TestBarrierCollective(t *testing.T) {
	var mu sync.Mutex
	arrived := 0
	runJob(t, 8, simnet.CostModel{}, func(c *Comm) {
		mu.Lock()
		arrived++
		mu.Unlock()
		c.Barrier()
		mu.Lock()
		if arrived != 8 {
			t.Errorf("rank %d passed barrier with %d arrivals", c.Rank(), arrived)
		}
		mu.Unlock()
	})
}

func TestBcastVariousSizesAndRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 13} {
		for root := 0; root < n; root += 3 {
			n, root := n, root
			t.Run(fmt.Sprintf("n%d_root%d", n, root), func(t *testing.T) {
				runJob(t, n, simnet.CostModel{}, func(c *Comm) {
					buf := make([]byte, 8)
					if c.Rank() == root {
						copy(buf, EncodeInt64s([]int64{777}))
					}
					c.Bcast(buf, root)
					if got := DecodeInt64s(buf)[0]; got != 777 {
						t.Errorf("rank %d got %d", c.Rank(), got)
					}
				})
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	const n = 9
	runJob(t, n, simnet.CostModel{}, func(c *Comm) {
		contrib := EncodeInt64s([]int64{int64(c.Rank() + 1), 1})
		recv := make([]byte, 16)
		c.Reduce(recv, contrib, SumInt64, 0)
		if c.Rank() == 0 {
			got := DecodeInt64s(recv)
			if got[0] != n*(n+1)/2 || got[1] != n {
				t.Errorf("reduce got %v", got)
			}
		}
	})
}

func TestAllreduceMax(t *testing.T) {
	const n = 6
	runJob(t, n, simnet.CostModel{}, func(c *Comm) {
		contrib := EncodeInt64s([]int64{int64(c.Rank() * 10)})
		recv := make([]byte, 8)
		c.Allreduce(recv, contrib, MaxInt64)
		if got := DecodeInt64s(recv)[0]; got != (n-1)*10 {
			t.Errorf("rank %d allreduce max = %d", c.Rank(), got)
		}
	})
}

func TestAllreduceFloatSum(t *testing.T) {
	const n = 5
	runJob(t, n, simnet.CostModel{}, func(c *Comm) {
		contrib := EncodeFloat64s([]float64{0.5})
		recv := make([]byte, 8)
		c.Allreduce(recv, contrib, SumFloat64)
		if got := DecodeFloat64s(recv)[0]; got != 2.5 {
			t.Errorf("sum = %v", got)
		}
	})
}

func TestGather(t *testing.T) {
	const n = 5
	runJob(t, n, simnet.CostModel{}, func(c *Comm) {
		contrib := []byte{byte(c.Rank()), byte(c.Rank())}
		got := c.Gather(contrib, 2)
		if c.Rank() != 2 {
			if got != nil {
				t.Errorf("non-root got %v", got)
			}
			return
		}
		for r := 0; r < n; r++ {
			if len(got[r]) != 2 || got[r][0] != byte(r) {
				t.Errorf("root: chunk %d = %v", r, got[r])
			}
		}
	})
}

func TestAllgather(t *testing.T) {
	const n = 7
	runJob(t, n, simnet.CostModel{}, func(c *Comm) {
		got := c.Allgather([]byte{byte(c.Rank() + 1)})
		for r := 0; r < n; r++ {
			if len(got[r]) != 1 || got[r][0] != byte(r+1) {
				t.Errorf("rank %d: chunk %d = %v", c.Rank(), r, got[r])
			}
		}
	})
}

func TestAlltoallv(t *testing.T) {
	const n = 6
	runJob(t, n, simnet.CostModel{}, func(c *Comm) {
		chunks := make([][]byte, n)
		for d := 0; d < n; d++ {
			// variable sizes: rank r sends d+1 copies of byte r to rank d
			chunk := make([]byte, d+1)
			for i := range chunk {
				chunk[i] = byte(c.Rank())
			}
			chunks[d] = chunk
		}
		got := c.Alltoallv(chunks)
		for s := 0; s < n; s++ {
			if len(got[s]) != c.Rank()+1 {
				t.Errorf("rank %d: chunk from %d has len %d, want %d", c.Rank(), s, len(got[s]), c.Rank()+1)
			}
			for _, b := range got[s] {
				if b != byte(s) {
					t.Errorf("rank %d: chunk from %d has wrong payload", c.Rank(), s)
				}
			}
		}
	})
}

func TestScan(t *testing.T) {
	const n = 6
	runJob(t, n, simnet.CostModel{}, func(c *Comm) {
		contrib := EncodeInt64s([]int64{int64(c.Rank() + 1)})
		recv := make([]byte, 8)
		c.Scan(recv, contrib, SumInt64)
		want := int64((c.Rank() + 1) * (c.Rank() + 2) / 2)
		if got := DecodeInt64s(recv)[0]; got != want {
			t.Errorf("rank %d scan = %d, want %d", c.Rank(), got, want)
		}
	})
}

func TestBackToBackCollectives(t *testing.T) {
	const n = 4
	runJob(t, n, simnet.CostModel{Alpha: 200 * time.Microsecond}, func(c *Comm) {
		for it := 0; it < 10; it++ {
			buf := make([]byte, 8)
			if c.Rank() == 0 {
				copy(buf, EncodeInt64s([]int64{int64(it)}))
			}
			c.Bcast(buf, 0)
			if got := DecodeInt64s(buf)[0]; got != int64(it) {
				t.Fatalf("rank %d iteration %d got %d (cross-iteration mixing)", c.Rank(), it, got)
			}
		}
	})
}

func TestIprobe(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{})
	c1 := w.Comm(1)
	if _, ok := c1.Iprobe(AnySource, AnyTag); ok {
		t.Fatal("Iprobe true on empty queue")
	}
	w.Comm(0).Send([]byte("abc"), 1, 5)
	st, ok := c1.Iprobe(0, 5)
	if !ok || st.Count != 3 {
		t.Fatalf("Iprobe = %+v %v", st, ok)
	}
	// Probe does not consume.
	buf := make([]byte, 3)
	if got := c1.Recv(buf, 0, 5); got.Count != 3 {
		t.Fatal("message consumed by probe")
	}
}

func TestNegativeUserTagPanics(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{})
	defer func() {
		if recover() == nil {
			t.Fatal("negative user tag must panic")
		}
	}()
	w.Comm(0).Send(nil, 1, -1)
}

func TestCodecRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		got := DecodeInt64s(EncodeInt64s(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(vals []float64) bool {
		got := DecodeFloat64s(EncodeFloat64s(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] && !(vals[i] != vals[i] && got[i] != got[i]) { // NaN-safe
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Allreduce(sum) over random contributions equals the local sum
// of all contributions, for any rank count.
func TestQuickAllreduce(t *testing.T) {
	f := func(vals []int16, nn uint8) bool {
		n := int(nn%6) + 1
		if len(vals) == 0 {
			vals = []int16{3}
		}
		if len(vals) > 8 {
			vals = vals[:8]
		}
		var want int64
		contribs := make([][]int64, n)
		for r := 0; r < n; r++ {
			contribs[r] = []int64{0}
			for _, v := range vals {
				contribs[r][0] += int64(v) * int64(r+1)
			}
			want += contribs[r][0]
		}
		results := make([]int64, n)
		w := NewWorld(n, simnet.CostModel{})
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				recv := make([]byte, 8)
				w.Comm(r).Allreduce(recv, EncodeInt64s(contribs[r]), SumInt64)
				results[r] = DecodeInt64s(recv)[0]
			}(r)
		}
		wg.Wait()
		for r := 0; r < n; r++ {
			if results[r] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPingPong(b *testing.B) {
	w := NewWorld(2, simnet.CostModel{})
	payload := make([]byte, 64)
	done := make(chan struct{})
	go func() {
		c := w.Comm(1)
		buf := make([]byte, 64)
		for i := 0; i < b.N; i++ {
			c.Recv(buf, 0, 0)
			c.Send(buf, 0, 1)
		}
		close(done)
	}()
	c := w.Comm(0)
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Send(payload, 1, 0)
		c.Recv(buf, 1, 1)
	}
	<-done
}

func BenchmarkAllreduce8(b *testing.B) {
	const n = 8
	w := NewWorld(n, simnet.CostModel{})
	var wg sync.WaitGroup
	b.ResetTimer()
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Comm(r)
			contrib := EncodeInt64s([]int64{int64(r)})
			recv := make([]byte, 8)
			for i := 0; i < b.N; i++ {
				c.Allreduce(recv, contrib, SumInt64)
			}
		}(r)
	}
	wg.Wait()
}

func TestIbarrier(t *testing.T) {
	const n = 4
	runJob(t, n, simnet.CostModel{}, func(c *Comm) {
		req := c.Ibarrier()
		// Useful work is possible while the barrier is pending.
		work := 0
		for i := 0; i < 100; i++ {
			work += i
		}
		_ = work
		st := req.Wait()
		if st.Source != c.Rank() {
			t.Errorf("ibarrier status source = %d", st.Source)
		}
		if !req.Test() {
			t.Error("Test false after Wait")
		}
	})
}

func TestIbarrierMixedWithBlocking(t *testing.T) {
	// Ibarrier arrivals and blocking Barrier arrivals count toward the
	// same generations.
	const n = 3
	runJob(t, n, simnet.CostModel{}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Ibarrier().Wait()
		} else {
			c.Barrier()
		}
	})
}

func TestTestallAndWaitallNilSafe(t *testing.T) {
	Waitall(nil, nil) // must not panic
	if !Testall(nil) {
		t.Fatal("Testall(nil) should be true")
	}
	w := NewWorld(2, simnet.CostModel{Alpha: 5 * time.Millisecond})
	buf := make([]byte, 8)
	r := w.Comm(1).Irecv(buf, 0, 0)
	if Testall(r, nil) {
		t.Fatal("Testall true with pending request")
	}
	w.Comm(0).Send(EncodeInt64s([]int64{1}), 1, 0)
	Waitall(r)
	if !Testall(r) {
		t.Fatal("Testall false after Waitall")
	}
}

func TestGatherAtEachRoot(t *testing.T) {
	const n = 3
	for root := 0; root < n; root++ {
		root := root
		runJob(t, n, simnet.CostModel{}, func(c *Comm) {
			got := c.Gather([]byte{byte(c.Rank() * 2)}, root)
			if c.Rank() == root {
				for r := 0; r < n; r++ {
					if got[r][0] != byte(r*2) {
						t.Errorf("root %d: chunk %d = %v", root, r, got[r])
					}
				}
			}
		})
	}
}
