package mpi

import "repro/internal/fabric"

// Collectives. Each is called once per rank per collective invocation.
// The algorithms (binomial-tree broadcast and reduce, ring allgather,
// eager all-to-all, linear scan) live in the shared collectives layer
// fabric.Coll, which SHMEM's collectives delegate to as well — one
// implementation, every module's collective traffic on the same fabric.
// The wrappers here add MPI's thread-mode enforcement.

// ReduceOp combines two equal-length byte buffers element-wise (the
// interpretation — int64 sum, float64 max, ... — belongs to the codec
// helpers in this package).
type ReduceOp = fabric.ReduceOp

// Barrier blocks until every rank in the communicator has entered.
func (c *Comm) Barrier() {
	c.enter()
	defer c.exit()
	c.world.coll.Barrier()
}

// Ibarrier is the nonblocking barrier (MPI_Ibarrier): the returned request
// completes when every rank has arrived (via Barrier or Ibarrier).
func (c *Comm) Ibarrier() *Request {
	c.enter()
	defer c.exit()
	req := newRequest()
	c.world.coll.BarrierAsync(func() {
		req.complete(Status{Source: c.rank, Tag: barrierTag})
	})
	return req
}

// Bcast broadcasts root's buf to all ranks; non-root ranks receive into buf.
func (c *Comm) Bcast(buf []byte, root int) {
	c.enter()
	defer c.exit()
	c.world.coll.Bcast(c.rank, buf, root)
}

// Reduce combines every rank's contribution with op; the result lands in
// recv on root only (recv may be nil elsewhere). contrib and recv must have
// equal length on ranks where present.
func (c *Comm) Reduce(recv, contrib []byte, op ReduceOp, root int) {
	c.enter()
	defer c.exit()
	c.world.coll.Reduce(c.rank, recv, contrib, op, root)
}

// Allreduce is Reduce to rank 0 followed by Bcast; every rank receives the
// combined result in recv.
func (c *Comm) Allreduce(recv, contrib []byte, op ReduceOp) {
	c.enter()
	defer c.exit()
	c.world.coll.Allreduce(c.rank, recv, contrib, op)
}

// Gather collects every rank's contribution at root; the result (indexed by
// rank) is returned on root, nil elsewhere. Contributions may vary in size.
func (c *Comm) Gather(contrib []byte, root int) [][]byte {
	c.enter()
	defer c.exit()
	return c.world.coll.Gather(c.rank, contrib, root)
}

// Allgather collects every rank's contribution on every rank, indexed by
// rank.
func (c *Comm) Allgather(contrib []byte) [][]byte {
	c.enter()
	defer c.exit()
	return c.world.coll.Allgather(c.rank, contrib)
}

// Alltoallv sends chunks[i] to rank i and returns the chunks received,
// indexed by source rank (chunks may vary in size — the "v" variant; the
// uniform Alltoall is the special case of equal sizes). This is the
// communication pattern whose flat form collapses at scale in ISx.
func (c *Comm) Alltoallv(chunks [][]byte) [][]byte {
	c.enter()
	defer c.exit()
	return c.world.coll.Alltoallv(c.rank, chunks)
}

// Scan computes the inclusive prefix reduction over ranks: rank i receives
// op(contrib_0, ..., contrib_i).
func (c *Comm) Scan(recv, contrib []byte, op ReduceOp) {
	c.enter()
	defer c.exit()
	c.world.coll.Scan(c.rank, recv, contrib, op)
}
