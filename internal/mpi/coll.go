package mpi

import "fmt"

// Collectives. Each is called once per rank per collective invocation; the
// per-(source,tag) FIFO guarantee of the fabric keeps back-to-back
// collectives of the same kind correctly matched without sequence numbers,
// because every receive names its exact source.

// Barrier blocks until every rank in the communicator has entered.
func (c *Comm) Barrier() {
	c.enter()
	defer c.exit()
	c.world.fabric.Barrier()
}

// Ibarrier is the nonblocking barrier (MPI_Ibarrier): the returned request
// completes when every rank has arrived (via Barrier or Ibarrier).
func (c *Comm) Ibarrier() *Request {
	c.enter()
	defer c.exit()
	req := newRequest()
	c.world.fabric.BarrierAsync(func() {
		req.complete(Status{Source: c.rank, Tag: tagBarrier})
	})
	return req
}

// Bcast broadcasts root's buf to all ranks along a binomial tree (so the
// critical path is O(log n) messages, as in real MPI implementations).
// Non-root ranks receive into buf.
func (c *Comm) Bcast(buf []byte, root int) {
	c.enter()
	defer c.exit()
	n := c.size
	// Rotate ranks so the root is virtual rank 0.
	vr := (c.rank - root + n) % n
	// Receive from parent (unless root).
	if vr != 0 {
		mask := 1
		for mask < n {
			if vr&mask != 0 {
				parent := ((vr - mask) + root) % n
				c.recvInto(buf, parent, tagBcast)
				break
			}
			mask <<= 1
		}
		// Forward to children above our lowest set bit.
		low := vr & (-vr)
		for mask = low >> 1; mask > 0; mask >>= 1 {
			child := vr + mask
			if child < n {
				c.world.fabric.Send(c.rank, (child+root)%n, tagBcast, buf)
			}
		}
		return
	}
	// Root: send to each power-of-two child.
	for mask := nextPow2(n) >> 1; mask > 0; mask >>= 1 {
		child := mask
		if child < n {
			c.world.fabric.Send(c.rank, (child+root)%n, tagBcast, buf)
		}
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ReduceOp combines two equal-length byte buffers element-wise (the
// interpretation — int64 sum, float64 max, ... — belongs to the codec
// helpers in this package).
type ReduceOp func(acc, in []byte)

// Reduce combines every rank's contribution with op; the result lands in
// recv on root only (recv may be nil elsewhere). contrib and recv must have
// equal length on ranks where present.
func (c *Comm) Reduce(recv, contrib []byte, op ReduceOp, root int) {
	c.enter()
	defer c.exit()
	n := c.size
	vr := (c.rank - root + n) % n
	acc := make([]byte, len(contrib))
	copy(acc, contrib)
	tmp := make([]byte, len(contrib))
	// Binomial-tree reduction toward virtual rank 0.
	for mask := 1; mask < n; mask <<= 1 {
		if vr&mask != 0 {
			parent := ((vr - mask) + root) % n
			c.world.fabric.Send(c.rank, parent, tagReduce, acc)
			return
		}
		childV := vr + mask
		if childV < n {
			child := (childV + root) % n
			st := c.recvInto(tmp, child, tagReduce)
			if st.Count != len(acc) {
				panic(fmt.Sprintf("mpi: Reduce size mismatch: %d vs %d", st.Count, len(acc)))
			}
			op(acc, tmp[:st.Count])
		}
	}
	if recv == nil {
		panic("mpi: Reduce root requires a receive buffer")
	}
	copy(recv, acc)
}

// Allreduce is Reduce to rank 0 followed by Bcast; every rank receives the
// combined result in recv.
func (c *Comm) Allreduce(recv, contrib []byte, op ReduceOp) {
	if c.rank == 0 {
		c.Reduce(recv, contrib, op, 0)
	} else {
		c.Reduce(recv, contrib, op, 0) // recv used as scratch target on non-roots
	}
	c.Bcast(recv, 0)
}

// Gather collects every rank's contribution at root; the result (indexed by
// rank) is returned on root, nil elsewhere. Contributions may vary in size.
func (c *Comm) Gather(contrib []byte, root int) [][]byte {
	c.enter()
	defer c.exit()
	if c.rank != root {
		c.world.fabric.Send(c.rank, root, tagGather, contrib)
		return nil
	}
	out := make([][]byte, c.size)
	out[root] = append([]byte(nil), contrib...)
	for i := 0; i < c.size-1; i++ {
		m := c.world.fabric.Recv(c.rank, AnySource, tagGather)
		out[m.Src] = m.Data
	}
	return out
}

// Allgather collects every rank's contribution on every rank, indexed by
// rank. Implemented as a ring exchange: n-1 steps, each forwarding the
// piece received in the previous step.
func (c *Comm) Allgather(contrib []byte) [][]byte {
	c.enter()
	defer c.exit()
	n := c.size
	out := make([][]byte, n)
	out[c.rank] = append([]byte(nil), contrib...)
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	cur := c.rank
	for step := 0; step < n-1; step++ {
		c.world.fabric.Send(c.rank, right, tagAllgather, out[cur])
		m := c.world.fabric.Recv(c.rank, left, tagAllgather)
		cur = (cur - 1 + n) % n
		out[cur] = m.Data
	}
	return out
}

// Alltoallv sends chunks[i] to rank i and returns the chunks received,
// indexed by source rank (chunks may vary in size — the "v" variant; the
// uniform Alltoall is the special case of equal sizes). This is the
// communication pattern whose flat form collapses at scale in ISx.
func (c *Comm) Alltoallv(chunks [][]byte) [][]byte {
	c.enter()
	defer c.exit()
	n := c.size
	if len(chunks) != n {
		panic(fmt.Sprintf("mpi: Alltoallv needs %d chunks, got %d", n, len(chunks)))
	}
	out := make([][]byte, n)
	out[c.rank] = append([]byte(nil), chunks[c.rank]...)
	// Post all sends (eager), then collect n-1 receives.
	for d := 0; d < n; d++ {
		if d != c.rank {
			c.world.fabric.Send(c.rank, d, tagAlltoall, chunks[d])
		}
	}
	for i := 0; i < n-1; i++ {
		m := c.world.fabric.Recv(c.rank, AnySource, tagAlltoall)
		if out[m.Src] != nil && m.Src != c.rank {
			panic(fmt.Sprintf("mpi: Alltoallv duplicate chunk from %d", m.Src))
		}
		out[m.Src] = m.Data
	}
	return out
}

// Scan computes the inclusive prefix reduction over ranks: rank i receives
// op(contrib_0, ..., contrib_i). Linear pipeline implementation.
func (c *Comm) Scan(recv, contrib []byte, op ReduceOp) {
	c.enter()
	defer c.exit()
	acc := make([]byte, len(contrib))
	copy(acc, contrib)
	if c.rank > 0 {
		tmp := make([]byte, len(contrib))
		st := c.recvInto(tmp, c.rank-1, tagScan)
		prev := tmp[:st.Count]
		// acc = prev op acc: apply op with prev as the left operand.
		combined := make([]byte, len(prev))
		copy(combined, prev)
		op(combined, acc)
		acc = combined
	}
	if c.rank < c.size-1 {
		c.world.fabric.Send(c.rank, c.rank+1, tagScan, acc)
	}
	copy(recv, acc)
}
