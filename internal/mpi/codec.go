package mpi

import (
	"encoding/binary"
	"math"
)

// Codec helpers: Go slices <-> wire bytes, plus the standard reduction
// operators over encoded buffers. Little-endian fixed-width encoding keeps
// the wire format trivial and the reductions exact.

// EncodeInt64s packs vals into a fresh byte buffer.
func EncodeInt64s(vals []int64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out
}

// DecodeInt64s unpacks a buffer produced by EncodeInt64s.
func DecodeInt64s(buf []byte) []int64 {
	out := make([]int64, len(buf)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}

// EncodeFloat64s packs vals into a fresh byte buffer.
func EncodeFloat64s(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// DecodeFloat64s unpacks a buffer produced by EncodeFloat64s.
func DecodeFloat64s(buf []byte) []float64 {
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}

// SumInt64 is a ReduceOp summing int64 elements.
func SumInt64(acc, in []byte) {
	for i := 0; i+8 <= len(acc) && i+8 <= len(in); i += 8 {
		a := int64(binary.LittleEndian.Uint64(acc[i:]))
		b := int64(binary.LittleEndian.Uint64(in[i:]))
		binary.LittleEndian.PutUint64(acc[i:], uint64(a+b))
	}
}

// MaxInt64 is a ReduceOp taking the element-wise maximum of int64s.
func MaxInt64(acc, in []byte) {
	for i := 0; i+8 <= len(acc) && i+8 <= len(in); i += 8 {
		a := int64(binary.LittleEndian.Uint64(acc[i:]))
		b := int64(binary.LittleEndian.Uint64(in[i:]))
		if b > a {
			binary.LittleEndian.PutUint64(acc[i:], uint64(b))
		}
	}
}

// MinInt64 is a ReduceOp taking the element-wise minimum of int64s.
func MinInt64(acc, in []byte) {
	for i := 0; i+8 <= len(acc) && i+8 <= len(in); i += 8 {
		a := int64(binary.LittleEndian.Uint64(acc[i:]))
		b := int64(binary.LittleEndian.Uint64(in[i:]))
		if b < a {
			binary.LittleEndian.PutUint64(acc[i:], uint64(b))
		}
	}
}

// SumFloat64 is a ReduceOp summing float64 elements.
func SumFloat64(acc, in []byte) {
	for i := 0; i+8 <= len(acc) && i+8 <= len(in); i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(acc[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(in[i:]))
		binary.LittleEndian.PutUint64(acc[i:], math.Float64bits(a+b))
	}
}

// MaxFloat64 is a ReduceOp taking the element-wise maximum of float64s.
func MaxFloat64(acc, in []byte) {
	for i := 0; i+8 <= len(acc) && i+8 <= len(in); i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(acc[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(in[i:]))
		if b > a {
			binary.LittleEndian.PutUint64(acc[i:], math.Float64bits(b))
		}
	}
}
