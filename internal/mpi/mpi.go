// Package mpi implements the subset of the MPI standard that the HiPER MPI
// module wraps, over the pluggable transport layer in package fabric. It
// stands in for a full MPI library (OpenMPI, MVAPICH, Cray MPI): the HiPER
// module "taskifies" these APIs exactly as it would a real library's.
//
// Semantics follow the standard: point-to-point messages are matched by
// (source, tag) with wildcards, per-pair ordering is FIFO, collectives
// require one call from every rank of the communicator, and nonblocking
// operations return Request objects that complete asynchronously.
//
// Each simulated process holds one *Comm per communicator; a World bundles
// the per-rank handles of MPI_COMM_WORLD for in-process job construction.
// A World built with NewWorldOver shares its transport endpoints with any
// other library world constructed over the same transport — SHMEM puts and
// MPI sends then contend for the same per-destination congestion windows,
// the composition behaviour the paper measures.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fabric"
	"repro/internal/simnet"
)

// ThreadMode mirrors MPI's thread support levels. The HiPER MPI module
// configures the library in Funneled mode — all MPI calls are made by tasks
// at the Interconnect place, serviced by a single worker's pop path — which
// keeps MPI runtime overheads low.
type ThreadMode int

const (
	// ThreadSingle allows exactly one thread per process (not enforced
	// separately from Funneled here).
	ThreadSingle ThreadMode = iota
	// ThreadFunneled requires all MPI calls to be serialized; concurrent
	// entry panics, surfacing composition bugs loudly.
	ThreadFunneled
	// ThreadMultiple allows unrestricted concurrent calls.
	ThreadMultiple
)

// World is an in-process MPI job: n ranks over one transport.
type World struct {
	tr    fabric.Transport
	coll  *fabric.Coll
	comms []*Comm
}

// NewWorld creates an n-rank job over a simulated interconnect with the
// given cost model.
func NewWorld(n int, cost simnet.CostModel) *World {
	return NewWorldOver(fabric.NewSim(n, cost))
}

// NewWorldOver creates a job over an existing transport, one rank per
// endpoint. Several library worlds (MPI, SHMEM, UPC++) may share one
// transport; their traffic then shares links, congestion windows, and
// locality domains.
//
// Rank handles are preallocated at the transport's capacity (which for
// an elastic fabric.Virtual exceeds its current Size), and Comm.Size is
// resolved through the transport on every call — so a world built over
// a Virtual survives live resize: after Grow, the handles for the new
// logical ranks already exist, and every rank's view of the world size
// updates at the next epoch boundary without rebuilding the world.
func NewWorldOver(tr fabric.Transport) *World {
	w := &World{tr: tr, coll: fabric.NewColl(tr)}
	slots := fabric.CapacityOf(tr)
	w.comms = make([]*Comm, slots)
	for r := 0; r < slots; r++ {
		w.comms[r] = &Comm{world: w, rank: r, mode: ThreadMultiple}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.tr.Size() }

// Transport exposes the underlying transport (for diagnostics and for
// composing further library worlds over the same endpoints).
func (w *World) Transport() fabric.Transport { return w.tr }

// Comm returns rank r's MPI_COMM_WORLD handle.
func (w *World) Comm(r int) *Comm { return w.comms[r] }

// Comm is one rank's handle on a communicator.
type Comm struct {
	world *World
	rank  int

	mode    ThreadMode
	inCall  atomic.Int32
	pending sync.WaitGroup // outstanding nonblocking ops (for Finalize)
}

// Rank returns the calling process's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size, resolved through the transport so
// it tracks live resize on an elastic fabric.
func (c *Comm) Size() int { return c.world.Size() }

// InitThread sets the thread support level, as MPI_Init_thread would.
func (c *Comm) InitThread(mode ThreadMode) { c.mode = mode }

// enter/exit enforce Funneled-mode serialization.
func (c *Comm) enter() {
	if c.mode == ThreadMultiple {
		return
	}
	if c.inCall.Add(1) != 1 {
		panic(fmt.Sprintf("mpi: rank %d: concurrent MPI calls under MPI_THREAD_FUNNELED", c.rank))
	}
}

func (c *Comm) exit() {
	if c.mode == ThreadMultiple {
		return
	}
	c.inCall.Add(-1)
}

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Count  int // bytes received
}

// Wildcards, mirroring MPI_ANY_SOURCE and MPI_ANY_TAG.
const (
	AnySource = fabric.AnySource
	AnyTag    = fabric.AnyTag
)

// barrierTag is the pseudo-tag reported in Ibarrier completion statuses.
const barrierTag = -2

// Send performs a blocking standard-mode send. The payload is buffered
// eagerly, so Send returns once the data is captured.
func (c *Comm) Send(buf []byte, dest, tag int) {
	c.enter()
	defer c.exit()
	if tag < 0 {
		panic("mpi: user tags must be non-negative")
	}
	c.world.tr.Send(c.rank, dest, tag, buf)
}

// Recv blocks until a matching message arrives and copies it into buf,
// which must be large enough.
func (c *Comm) Recv(buf []byte, source, tag int) Status {
	c.enter()
	defer c.exit()
	return c.recvInto(buf, source, tag)
}

func (c *Comm) recvInto(buf []byte, source, tag int) Status {
	m := c.world.tr.Recv(c.rank, source, tag)
	if len(m.Data) > len(buf) {
		panic(fmt.Sprintf("mpi: rank %d: message of %d bytes overflows %d-byte receive buffer",
			c.rank, len(m.Data), len(buf)))
	}
	copy(buf, m.Data)
	return Status{Source: m.Src, Tag: m.Tag, Count: len(m.Data)}
}

// Request represents an outstanding nonblocking operation. Completion can
// be polled with Test (how the HiPER module's poller task operates) or
// awaited with Wait.
type Request struct {
	done   atomic.Bool
	ch     chan struct{}
	status Status

	mu  sync.Mutex
	cbs []func(Status)
}

func newRequest() *Request { return &Request{ch: make(chan struct{})} }

func (r *Request) complete(st Status) {
	r.mu.Lock()
	r.status = st
	cbs := r.cbs
	r.cbs = nil
	r.done.Store(true)
	r.mu.Unlock()
	close(r.ch)
	for _, cb := range cbs {
		cb(st)
	}
}

// Test reports whether the operation has completed, without blocking.
func (r *Request) Test() bool { return r.done.Load() }

// Wait blocks until the operation completes and returns its status.
func (r *Request) Wait() Status {
	<-r.ch
	return r.status
}

// Status returns the completion status; valid only after completion.
func (r *Request) Status() Status { return r.status }

// OnComplete registers fn to run when the request completes (immediately if
// it already has). The HiPER module's callback-mode ablation uses this; the
// default module configuration polls with Test instead, as the paper
// describes.
func (r *Request) OnComplete(fn func(Status)) {
	r.mu.Lock()
	if r.done.Load() {
		st := r.status
		r.mu.Unlock()
		fn(st)
		return
	}
	r.cbs = append(r.cbs, fn)
	r.mu.Unlock()
}

// Isend starts a nonblocking send. With eager buffering the request
// completes as soon as the payload is captured.
func (c *Comm) Isend(buf []byte, dest, tag int) *Request {
	c.enter()
	defer c.exit()
	if tag < 0 {
		panic("mpi: user tags must be non-negative")
	}
	req := newRequest()
	c.world.tr.Send(c.rank, dest, tag, buf)
	req.complete(Status{Source: c.rank, Tag: tag, Count: len(buf)})
	return req
}

// Irecv starts a nonblocking receive into buf. The request completes when
// a matching message has been copied into buf.
func (c *Comm) Irecv(buf []byte, source, tag int) *Request {
	c.enter()
	defer c.exit()
	req := newRequest()
	c.pending.Add(1)
	c.world.tr.RecvAsync(c.rank, source, tag, func(m fabric.Message) {
		defer c.pending.Done()
		if len(m.Data) > len(buf) {
			panic(fmt.Sprintf("mpi: rank %d: message of %d bytes overflows %d-byte Irecv buffer",
				c.rank, len(m.Data), len(buf)))
		}
		copy(buf, m.Data)
		req.complete(Status{Source: m.Src, Tag: m.Tag, Count: len(m.Data)})
	})
	return req
}

// Waitall blocks until every request completes.
func Waitall(reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// Testall reports whether all requests have completed.
func Testall(reqs ...*Request) bool {
	for _, r := range reqs {
		if r != nil && !r.Test() {
			return false
		}
	}
	return true
}

// Iprobe reports whether a matching message is queued, without receiving
// it. The reference Graph500 implementation polls with this.
func (c *Comm) Iprobe(source, tag int) (Status, bool) {
	c.enter()
	defer c.exit()
	m, ok := c.world.tr.Probe(c.rank, source, tag)
	if !ok {
		return Status{}, false
	}
	return Status{Source: m.Src, Tag: m.Tag, Count: len(m.Data)}, true
}

// Finalize waits for this rank's outstanding nonblocking receives.
func (c *Comm) Finalize() {
	c.pending.Wait()
}
