package hipercuda

import (
	"testing"
	"time"

	"repro/hiper"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/modules"
	"repro/internal/platform"
)

// boot creates a runtime with a GPU platform model and installs the module.
func boot(t testing.TB, workers int, cfg cuda.Config, opts *Options) (*core.Runtime, *Module) {
	t.Helper()
	rt, err := core.New(platform.DefaultWithGPU(workers, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	m := New(cuda.NewDevice(cfg), opts)
	modules.MustInstall(rt, m)
	t.Cleanup(rt.Shutdown)
	return rt, m
}

func TestInitRequiresGPUPlaces(t *testing.T) {
	rt, err := hiper.New(hiper.WithWorkers(1)) // default model has no GPU
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if err := modules.Install(rt, New(cuda.NewDevice(cuda.Config{}), nil)); err == nil {
		t.Fatal("Init must fail without GPU places")
	}
}

func TestForasyncCUDA(t *testing.T) {
	rt, m := boot(t, 2, cuda.Config{SMs: 2}, nil)
	rt.Launch(func(c *core.Ctx) {
		const n = 4096
		buf := m.MustMalloc(n)
		f := m.ForasyncCUDA(c, n, func(i int) { buf.Data()[i] = float64(i) })
		c.Wait(f)
		host := make([]float64, n)
		m.MemcpyD2H(c, host, buf, 0, n)
		for i := 0; i < n; i += 997 {
			if host[i] != float64(i) {
				t.Errorf("host[%d] = %v", i, host[i])
			}
		}
	})
}

func TestAsyncMemcpyFutures(t *testing.T) {
	rt, m := boot(t, 2, cuda.Config{SMs: 2, MemcpyAlpha: 2 * time.Millisecond}, nil)
	rt.Launch(func(c *core.Ctx) {
		buf := m.MustMalloc(16)
		src := make([]float64, 16)
		for i := range src {
			src[i] = float64(i) + 0.5
		}
		fh := m.MemcpyH2DAsync(c, buf, 0, src)
		if fh.Done() {
			t.Error("H2D future done before transfer latency")
		}
		c.Wait(fh)
		dst := make([]float64, 16)
		c.Wait(m.MemcpyD2HAsync(c, dst, buf, 0, 16))
		for i := range dst {
			if dst[i] != src[i] {
				t.Fatalf("dst[%d] = %v", i, dst[i])
			}
		}
	})
}

func TestKernelAwaitChain(t *testing.T) {
	// H2D -> kernel (awaits copy) -> D2H (awaits kernel): the paper's GEO
	// inner loop expressed with futures.
	rt, m := boot(t, 2, cuda.Config{SMs: 2, MemcpyAlpha: time.Millisecond}, nil)
	rt.Launch(func(c *core.Ctx) {
		const n = 256
		buf := m.MustMalloc(n)
		src := make([]float64, n)
		for i := range src {
			src[i] = 1
		}
		h2d := m.MemcpyH2DAsync(c, buf, 0, src)
		kern := m.ForasyncCUDAAwait(c, n, func(i int) { buf.Data()[i] += 41 }, h2d)
		dst := make([]float64, n)
		d2h := m.MemcpyD2HAwait(c, dst, buf, 0, n, kern)
		c.Wait(d2h)
		for i := range dst {
			if dst[i] != 42 {
				t.Fatalf("dst[%d] = %v; chain ran out of order", i, dst[i])
			}
		}
	})
}

func TestAsyncCopyRoutedThroughModule(t *testing.T) {
	// The generic HiPER AsyncCopy API must be handed to the CUDA module for
	// GPU places (the module's special-purpose registration).
	rt, m := boot(t, 2, cuda.Config{SMs: 2}, nil)
	mem := rt.Model().FirstByKind(platform.KindSysMem)
	gmem := m.GPUMemPlace()
	rt.Launch(func(c *core.Ctx) {
		buf := m.MustMalloc(8)
		host := []float64{1, 2, 3, 4, 5, 6, 7, 8}
		c.Wait(c.AsyncCopy(core.At(gmem, buf), core.At(mem, host), 8))
		out := make([]float64, 8)
		c.Wait(c.AsyncCopy(core.At(mem, out), core.At(gmem, buf), 8))
		for i := range host {
			if out[i] != host[i] {
				t.Fatalf("roundtrip[%d] = %v", i, out[i])
			}
		}
		// Device-to-device through the generic API.
		buf2 := m.MustMalloc(8)
		c.Wait(c.AsyncCopy(core.At(gmem, buf2), core.At(gmem, buf), 8))
		out2 := make([]float64, 8)
		c.Wait(c.AsyncCopy(core.At(mem, out2), core.At(gmem, buf2), 8))
		if out2[7] != 8 {
			t.Fatalf("d2d roundtrip = %v", out2)
		}
		k, _, _ := m.Device().Stats()
		_ = k
	})
}

func TestAsyncCopyWrongTypePanics(t *testing.T) {
	rt, m := boot(t, 2, cuda.Config{}, nil)
	mem := rt.Model().FirstByKind(platform.KindSysMem)
	rt.Launch(func(c *core.Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for wrong buffer type")
			}
		}()
		c.AsyncCopy(core.At(m.GPUMemPlace(), []int{1}), core.At(mem, []float64{1}), 1)
	})
}

func TestOverlappedKernelsAndCopies(t *testing.T) {
	rt, m := boot(t, 4, cuda.Config{SMs: 4, MemcpyAlpha: 2 * time.Millisecond}, &Options{Streams: 4})
	rt.Launch(func(c *core.Ctx) {
		const n = 128
		futs := make([]*core.Future, 0, 8)
		bufs := make([]*cuda.Buffer, 8)
		hosts := make([][]float64, 8)
		for i := 0; i < 8; i++ {
			bufs[i] = m.MustMalloc(n)
			hosts[i] = make([]float64, n)
			i := i
			h2d := m.MemcpyH2DAsync(c, bufs[i], 0, hosts[i])
			k := m.ForasyncCUDAAwait(c, n, func(j int) { bufs[i].Data()[j] = float64(i) }, h2d)
			futs = append(futs, m.MemcpyD2HAwait(c, hosts[i], bufs[i], 0, n, k))
		}
		c.Wait(core.WhenAll(c.Runtime(), futs...))
		for i := 0; i < 8; i++ {
			if hosts[i][n-1] != float64(i) {
				t.Fatalf("pipeline %d = %v", i, hosts[i][n-1])
			}
		}
	})
}

func TestMallocFreeThroughModule(t *testing.T) {
	_, m := boot(t, 1, cuda.Config{MemBytes: 256}, nil)
	b, err := m.Malloc(16) // 128 bytes
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Malloc(32); err == nil {
		t.Fatal("expected OOM")
	}
	m.Free(b)
	if _, err := m.Malloc(32); err != nil {
		t.Fatal(err)
	}
}
