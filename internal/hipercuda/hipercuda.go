// Package hipercuda is the HiPER CUDA module. It supports blocking and
// asynchronous data transfers and asynchronous CUDA kernels, scheduled on
// the unified HiPER runtime.
//
// It is the only standard module that registers special-purpose functions
// with the runtime: at Init it registers itself as the handler for
// AsyncCopy transfers that read or write GPU places, so any module or
// application calling HiPER's generic data-movement API is transparently
// routed through CUDA streams.
//
// Asynchronous operations use the same polling technique as the MPI module
// (a single yielding poller task testing CUDA events and satisfying HiPER
// promises).
package hipercuda

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/platform"
	"repro/internal/spin"
	"repro/internal/stats"
)

// ModuleName is the name this module registers under.
const ModuleName = "cuda"

// Options tunes module behaviour.
type Options struct {
	// PollInterval bounds CPU burned on empty event-polling rounds.
	// Default 20µs.
	PollInterval time.Duration
	// Streams is the number of device streams the module round-robins
	// asynchronous operations over. Default 4.
	Streams int
}

// Module is the HiPER CUDA module bound to one device.
type Module struct {
	dev  *cuda.Device
	opts Options

	rt     *core.Runtime
	gpu    *platform.Place // execution place
	gpumem *platform.Place // device-memory place

	streams []*cuda.Stream
	nextStr int
	strMu   sync.Mutex

	mu           sync.Mutex
	pending      []pendingEvent
	pollerActive bool
}

type pendingEvent struct {
	ev   *cuda.Event
	prom *core.Promise
	cost float64 // in-flight hint to retire on completion
}

// New creates the module for one simulated device.
func New(dev *cuda.Device, opts *Options) *Module {
	m := &Module{dev: dev}
	if opts != nil {
		m.opts = *opts
	}
	if m.opts.PollInterval <= 0 {
		m.opts.PollInterval = 20 * time.Microsecond
	}
	if m.opts.Streams <= 0 {
		m.opts.Streams = 4
	}
	return m
}

// Name implements modules.Module.
func (m *Module) Name() string { return ModuleName }

// Init asserts GPU places exist, creates the module's streams, and
// registers the GPU copy handlers with the runtime.
func (m *Module) Init(rt *core.Runtime) error {
	gpu := rt.Model().FirstByKind(platform.KindGPU)
	gpumem := rt.Model().FirstByKind(platform.KindGPUMem)
	if gpu == nil || gpumem == nil {
		return fmt.Errorf("hipercuda: platform model needs %q and %q places", platform.KindGPU, platform.KindGPUMem)
	}
	if !rt.Model().CoveredPlaces()[gpu.ID] {
		return fmt.Errorf("hipercuda: gpu place %v is on no worker's pop or steal path", gpu)
	}
	m.rt = rt
	m.gpu = gpu
	m.gpumem = gpumem
	m.streams = make([]*cuda.Stream, m.opts.Streams)
	for i := range m.streams {
		m.streams[i] = m.dev.NewStream()
	}
	// Special-purpose registration: anytime a call to HiPER's AsyncCopy
	// API reads or writes a GPU place, it is handed to this module.
	rt.RegisterCopyHandler(platform.KindSysMem, platform.KindGPUMem, m.copyH2D)
	rt.RegisterCopyHandler(platform.KindGPUMem, platform.KindSysMem, m.copyD2H)
	rt.RegisterCopyHandler(platform.KindGPUMem, platform.KindGPUMem, m.copyD2D)
	return nil
}

// Finalize drains the device.
func (m *Module) Finalize() {
	m.dev.Synchronize()
}

// Device returns the wrapped device.
func (m *Module) Device() *cuda.Device { return m.dev }

// GPUPlace returns the device's execution place.
func (m *Module) GPUPlace() *platform.Place { return m.gpu }

// GPUMemPlace returns the device's memory place.
func (m *Module) GPUMemPlace() *platform.Place { return m.gpumem }

// Malloc allocates device memory.
func (m *Module) Malloc(n int) (*cuda.Buffer, error) { return m.dev.Malloc(n) }

// MustMalloc allocates device memory or panics.
func (m *Module) MustMalloc(n int) *cuda.Buffer { return m.dev.MustMalloc(n) }

// Free releases device memory.
func (m *Module) Free(b *cuda.Buffer) { m.dev.Free(b) }

// stream picks the next stream round-robin.
func (m *Module) stream() *cuda.Stream {
	m.strMu.Lock()
	s := m.streams[m.nextStr%len(m.streams)]
	m.nextStr++
	m.strMu.Unlock()
	return s
}

// register parks (event, promise) for the poller, mirroring the MPI
// module's pending-request scheme. cost estimates the registered
// operation's device occupancy (abstract units: kernel grid size, copy
// kilo-elements); it is reported to the scheduling policy as in-flight
// work at the GPU place and retired when the poller sees the event
// complete, so cost-model policies see device pressure build and drain.
func (m *Module) register(c *core.Ctx, ev *cuda.Event, cost float64) *core.Future {
	m.rt.HintInFlight(m.gpu, cost)
	prom := core.NewPromise(m.rt)
	m.mu.Lock()
	m.pending = append(m.pending, pendingEvent{ev: ev, prom: prom, cost: cost})
	spawn := !m.pollerActive
	if spawn {
		m.pollerActive = true
	}
	m.mu.Unlock()
	if spawn {
		c.AsyncDetachedAt(m.gpu, m.poll)
	}
	return prom.Future()
}

// poll tests pending CUDA events, satisfies completed promises, yields
// while work remains.
func (m *Module) poll(c *core.Ctx) {
	m.mu.Lock()
	var still, done []pendingEvent
	for _, p := range m.pending {
		if p.ev.Query() {
			done = append(done, p)
		} else {
			still = append(still, p)
		}
	}
	m.pending = still
	remaining := len(still)
	if remaining == 0 {
		m.pollerActive = false
	}
	m.mu.Unlock()

	for _, p := range done {
		m.rt.HintInFlight(m.gpu, -p.cost)
		c.Put(p.prom, nil)
	}
	if remaining > 0 {
		if len(done) == 0 {
			spin.Sleep(m.opts.PollInterval) //hiperlint:ignore raw-delay-outside-fabric poller back-off pacing, not a modelled transfer
		}
		c.Yield(m.poll)
	}
}

// ForasyncCUDA launches kernel over grid asynchronously and returns a
// future satisfied on completion — the paper's forasync_cuda.
func (m *Module) ForasyncCUDA(c *core.Ctx, grid int, kernel cuda.Kernel) *core.Future {
	defer stats.Track(ModuleName, "forasync_cuda")()
	ev := m.stream().LaunchAsync(grid, kernel)
	return m.register(c, ev, float64(grid))
}

// ForasyncCUDAAwait launches kernel once all deps are satisfied and
// returns a future satisfied on kernel completion.
func (m *Module) ForasyncCUDAAwait(c *core.Ctx, grid int, kernel cuda.Kernel, deps ...*core.Future) *core.Future {
	out := core.NewPromise(m.rt)
	c.AsyncAwaitAt(m.gpu, func(cc *core.Ctx) {
		m.ForasyncCUDA(cc, grid, kernel).OnDone(func(any) { out.Put(nil) })
	}, deps...)
	return out.Future()
}

// MemcpyH2DAsync starts an asynchronous host-to-device copy, returning its
// completion future.
func (m *Module) MemcpyH2DAsync(c *core.Ctx, dst *cuda.Buffer, dstOff int, src []float64) *core.Future {
	defer stats.Track(ModuleName, "cudaMemcpyAsync_H2D")()
	ev := m.stream().MemcpyH2DAsync(dst, dstOff, src)
	return m.register(c, ev, float64(len(src))/1024)
}

// MemcpyD2HAsync starts an asynchronous device-to-host copy, returning its
// completion future. The host buffer must not be read until it completes.
func (m *Module) MemcpyD2HAsync(c *core.Ctx, dst []float64, src *cuda.Buffer, srcOff, n int) *core.Future {
	defer stats.Track(ModuleName, "cudaMemcpyAsync_D2H")()
	ev := m.stream().MemcpyD2HAsync(dst, src, srcOff, n)
	return m.register(c, ev, float64(n)/1024)
}

// MemcpyH2D is the blocking transfer (taskified at the GPU place).
func (m *Module) MemcpyH2D(c *core.Ctx, dst *cuda.Buffer, dstOff int, src []float64) {
	defer stats.Track(ModuleName, "cudaMemcpy_H2D")()
	c.Wait(m.MemcpyH2DAsync(c, dst, dstOff, src))
}

// MemcpyD2H is the blocking transfer (taskified at the GPU place).
func (m *Module) MemcpyD2H(c *core.Ctx, dst []float64, src *cuda.Buffer, srcOff, n int) {
	defer stats.Track(ModuleName, "cudaMemcpy_D2H")()
	c.Wait(m.MemcpyD2HAsync(c, dst, src, srcOff, n))
}

// MemcpyAwait chains an asynchronous copy on dependency futures: the copy
// starts only after all deps are satisfied. dstBuf/srcBuf follow the same
// conventions as the copy handlers (cuda.Buffer or []float64 by direction).
func (m *Module) MemcpyH2DAwait(c *core.Ctx, dst *cuda.Buffer, dstOff int, src []float64, deps ...*core.Future) *core.Future {
	out := core.NewPromise(m.rt)
	c.AsyncAwaitAt(m.gpu, func(cc *core.Ctx) {
		m.MemcpyH2DAsync(cc, dst, dstOff, src).OnDone(func(any) { out.Put(nil) })
	}, deps...)
	return out.Future()
}

// MemcpyD2HAwait is MemcpyH2DAwait for the device-to-host direction — the
// paper's async_copy_await as used in GEO's time loop.
func (m *Module) MemcpyD2HAwait(c *core.Ctx, dst []float64, src *cuda.Buffer, srcOff, n int, deps ...*core.Future) *core.Future {
	out := core.NewPromise(m.rt)
	c.AsyncAwaitAt(m.gpu, func(cc *core.Ctx) {
		m.MemcpyD2HAsync(cc, dst, src, srcOff, n).OnDone(func(any) { out.Put(nil) })
	}, deps...)
	return out.Future()
}

// The AsyncCopy handlers registered with the runtime. Data conventions:
// host side is []float64, device side is *cuda.Buffer; element offsets
// come from the Buf, n is the element count.

func (m *Module) copyH2D(c *core.Ctx, dst, src core.Buf, n int) *core.Future {
	d, ok := dst.Data.(*cuda.Buffer)
	if !ok {
		panic(fmt.Sprintf("hipercuda: AsyncCopy to GPU place requires *cuda.Buffer destination, got %T", dst.Data))
	}
	s, ok := src.Data.([]float64)
	if !ok {
		panic(fmt.Sprintf("hipercuda: AsyncCopy to GPU place requires []float64 source, got %T", src.Data))
	}
	return m.MemcpyH2DAsync(c, d, dst.Off, s[src.Off:src.Off+n])
}

func (m *Module) copyD2H(c *core.Ctx, dst, src core.Buf, n int) *core.Future {
	d, ok := dst.Data.([]float64)
	if !ok {
		panic(fmt.Sprintf("hipercuda: AsyncCopy from GPU place requires []float64 destination, got %T", dst.Data))
	}
	s, ok := src.Data.(*cuda.Buffer)
	if !ok {
		panic(fmt.Sprintf("hipercuda: AsyncCopy from GPU place requires *cuda.Buffer source, got %T", src.Data))
	}
	return m.MemcpyD2HAsync(c, d[dst.Off:dst.Off+n], s, src.Off, n)
}

func (m *Module) copyD2D(c *core.Ctx, dst, src core.Buf, n int) *core.Future {
	d, ok := dst.Data.(*cuda.Buffer)
	s, ok2 := src.Data.(*cuda.Buffer)
	if !ok || !ok2 {
		panic(fmt.Sprintf("hipercuda: AsyncCopy between GPU places requires *cuda.Buffer on both sides, got %T and %T", src.Data, dst.Data))
	}
	ev := m.stream().MemcpyD2DAsync(d, dst.Off, s, src.Off, n)
	return m.register(c, ev, float64(n)/1024)
}
