package omp

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelRunsEachThread(t *testing.T) {
	team := NewTeam(4)
	var hits [4]atomic.Int32
	team.Parallel(func(tid int) { hits[tid].Add(1) })
	for tid := range hits {
		if hits[tid].Load() != 1 {
			t.Fatalf("tid %d ran %d times", tid, hits[tid].Load())
		}
	}
}

func TestParallelForCoverage(t *testing.T) {
	team := NewTeam(3)
	const n = 1000
	hits := make([]atomic.Int32, n)
	team.ParallelFor(0, n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("i=%d ran %d times", i, hits[i].Load())
		}
	}
	// Empty and reversed ranges are no-ops.
	team.ParallelFor(5, 5, func(int) { t.Error("empty range ran") })
	team.ParallelFor(9, 3, func(int) { t.Error("reversed range ran") })
}

func TestParallelForDynamicCoverage(t *testing.T) {
	team := NewTeam(4)
	const n = 777
	hits := make([]atomic.Int32, n)
	team.ParallelForDynamic(0, n, 10, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("i=%d ran %d times", i, hits[i].Load())
		}
	}
	team.ParallelForDynamic(0, 10, 0, func(int) {}) // chunk<=0 clamps to 1
}

func TestTasksTransitive(t *testing.T) {
	team := NewTeam(4)
	var count atomic.Int64
	team.Tasks(func(tg *TaskGroup) {
		for i := 0; i < 8; i++ {
			tg.Spawn(func(tg *TaskGroup) {
				for j := 0; j < 8; j++ {
					tg.Spawn(func(*TaskGroup) { count.Add(1) })
				}
			})
		}
	})
	if count.Load() != 64 {
		t.Fatalf("tasks executed = %d, want 64", count.Load())
	}
}

func TestTasksDrainBeforeReturn(t *testing.T) {
	team := NewTeam(2)
	var done atomic.Bool
	team.Tasks(func(tg *TaskGroup) {
		tg.Spawn(func(tg *TaskGroup) {
			tg.Spawn(func(*TaskGroup) { done.Store(true) })
		})
	})
	if !done.Load() {
		t.Fatal("Tasks returned before the group drained")
	}
}

func TestNewTeamValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTeam(0) must panic")
		}
	}()
	NewTeam(0)
}

// Property: ParallelFor computes the same sum as a sequential loop for any
// bounds and team size.
func TestQuickParallelForSum(t *testing.T) {
	f := func(lo8, n8, team8 uint8) bool {
		lo := int(lo8 % 50)
		hi := lo + int(n8%200)
		team := NewTeam(int(team8%7) + 1)
		var got atomic.Int64
		team.ParallelFor(lo, hi, func(i int) { got.Add(int64(i)) })
		var want int64
		for i := lo; i < hi; i++ {
			want += int64(i)
		}
		return got.Load() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParallelForForkJoin(b *testing.B) {
	team := NewTeam(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		team.ParallelFor(0, 1024, func(int) {})
	}
}
