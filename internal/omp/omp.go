// Package omp is a minimal OpenMP-style runtime used ONLY by the paper's
// baseline variants (MPI+OpenMP, OpenSHMEM+OpenMP, OpenSHMEM+OpenMP Tasks).
//
// It deliberately reproduces the structural property the paper contrasts
// HiPER against: OpenMP regions are fork-join, and OpenMP task groups
// require coarse-grain synchronization (taskwait over ALL pending tasks)
// before the enclosing code can proceed — there is no integration with a
// communication runtime, so distributed load-balancing loops must
// repeatedly drain the whole local task pool.
package omp

import (
	"sync"
	"sync/atomic"
)

// Team is an OpenMP thread team of fixed size.
type Team struct {
	n int
}

// NewTeam creates a team with n threads (n <= 0 panics: OpenMP requires a
// positive team size).
func NewTeam(n int) *Team {
	if n <= 0 {
		panic("omp: team size must be positive")
	}
	return &Team{n: n}
}

// Size returns the team size (omp_get_num_threads).
func (t *Team) Size() int { return t.n }

// Parallel runs fn once per team thread (a `parallel` region) and joins.
func (t *Team) Parallel(fn func(tid int)) {
	var wg sync.WaitGroup
	for tid := 0; tid < t.n; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			fn(tid)
		}(tid)
	}
	wg.Wait()
}

// ParallelFor runs body over [lo, hi) with static scheduling
// (`parallel for schedule(static)`) and an implicit barrier at the end.
func (t *Team) ParallelFor(lo, hi int, body func(i int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	chunk := (n + t.n - 1) / t.n
	var wg sync.WaitGroup
	for tid := 0; tid < t.n; tid++ {
		s := lo + tid*chunk
		e := s + chunk
		if e > hi {
			e = hi
		}
		if s >= e {
			break
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			for i := s; i < e; i++ {
				body(i)
			}
		}(s, e)
	}
	wg.Wait()
}

// ParallelForDynamic runs body over [lo, hi) with dynamic scheduling
// (`schedule(dynamic, chunk)`).
func (t *Team) ParallelForDynamic(lo, hi, chunk int, body func(i int)) {
	if hi <= lo {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	var next atomic.Int64
	next.Store(int64(lo))
	var wg sync.WaitGroup
	for tid := 0; tid < t.n; tid++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(int64(chunk))) - chunk
				if s >= hi {
					return
				}
				e := s + chunk
				if e > hi {
					e = hi
				}
				for i := s; i < e; i++ {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
}

// TaskGroup is an OpenMP task pool executed by a team inside a parallel
// region. Tasks may spawn further tasks. The group's Run call returns only
// when ALL tasks (including transitively spawned ones) have finished —
// this is the coarse-grain synchronization point the paper identifies as
// the structural weakness of the OpenSHMEM+OpenMP Tasks UTS variant: the
// application cannot interleave communication or termination checks with
// task execution; it must wait for the whole batch.
type TaskGroup struct {
	mu      sync.Mutex
	queue   []func(*TaskGroup)
	pending int64
	cond    *sync.Cond
}

// Tasks runs seed inside a fresh task group on the team and blocks until
// the group fully drains (`parallel` + `single` seeding + implicit
// taskwait at region end).
func (t *Team) Tasks(seed func(tg *TaskGroup)) {
	tg := &TaskGroup{}
	tg.cond = sync.NewCond(&tg.mu)
	tg.Spawn(seed)
	t.Parallel(func(int) {
		tg.work()
	})
}

// Spawn enqueues a task (`#pragma omp task`).
func (tg *TaskGroup) Spawn(fn func(*TaskGroup)) {
	tg.mu.Lock()
	tg.queue = append(tg.queue, fn)
	tg.pending++
	tg.cond.Broadcast()
	tg.mu.Unlock()
}

// work executes tasks until the group drains (no queued tasks and no task
// in flight anywhere in the team).
func (tg *TaskGroup) work() {
	for {
		tg.mu.Lock()
		for len(tg.queue) == 0 && tg.pending > 0 {
			tg.cond.Wait()
		}
		if tg.pending == 0 {
			tg.cond.Broadcast()
			tg.mu.Unlock()
			return
		}
		fn := tg.queue[len(tg.queue)-1]
		tg.queue = tg.queue[:len(tg.queue)-1]
		tg.mu.Unlock()

		fn(tg)

		tg.mu.Lock()
		tg.pending--
		if tg.pending == 0 {
			tg.cond.Broadcast()
		}
		tg.mu.Unlock()
	}
}
