package upcxx

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simnet"
)

func TestRPutVisibleAfterQuiet(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{Alpha: time.Millisecond})
	a := w.AllocShared(4)
	r0 := w.Rank(0)
	r0.RPut(a, 1, 1, []float64{2.5, 3.5}, nil)
	r0.Quiet()
	if a.Local(1)[1] != 2.5 || a.Local(1)[2] != 3.5 {
		t.Fatalf("remote block = %v", a.Local(1))
	}
}

func TestRPutRemoteCompletion(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{Alpha: time.Millisecond})
	a := w.AllocShared(1)
	done := make(chan struct{})
	w.Rank(0).RPut(a, 1, 0, []float64{1}, func() {
		if a.Local(1)[0] != 1 {
			t.Error("remote completion fired before data visible")
		}
		close(done)
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("remote completion never fired")
	}
}

func TestRPutCapturesSource(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{Alpha: 5 * time.Millisecond})
	a := w.AllocShared(1)
	src := []float64{7}
	w.Rank(0).RPut(a, 1, 0, src, nil)
	src[0] = 0
	w.Rank(0).Quiet()
	if a.Local(1)[0] != 7 {
		t.Fatal("RPut did not capture source eagerly")
	}
}

func TestRGet(t *testing.T) {
	w := NewWorld(3, simnet.CostModel{})
	a := w.AllocShared(4)
	copy(a.Local(2), []float64{1, 2, 3, 4})
	got := make(chan []float64, 1)
	w.Rank(0).RGet(a, 2, 1, 2, func(v []float64) { got <- v })
	select {
	case v := <-got:
		if len(v) != 2 || v[0] != 2 || v[1] != 3 {
			t.Fatalf("rget = %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rget never completed")
	}
}

func TestRPCRequiresProgress(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{})
	var ran atomic.Bool
	acked := make(chan struct{})
	w.Rank(0).RPC(1, func(target *Rank) {
		if target.ID() != 1 {
			t.Errorf("rpc ran on rank %d", target.ID())
		}
		ran.Store(true)
	}, func() { close(acked) })
	w.Rank(0).Quiet() // rpc enqueued at target
	if ran.Load() {
		t.Fatal("rpc executed without Progress")
	}
	if !w.Rank(1).PendingRPCs() {
		t.Fatal("rpc not pending at target")
	}
	if n := w.Rank(1).Progress(); n != 1 {
		t.Fatalf("Progress ran %d rpcs", n)
	}
	if !ran.Load() {
		t.Fatal("rpc did not run during Progress")
	}
	select {
	case <-acked:
	case <-time.After(5 * time.Second):
		t.Fatal("rpc ack never fired")
	}
}

func TestBarrierSynchronizesRPuts(t *testing.T) {
	const n = 4
	w := NewWorld(n, simnet.CostModel{Alpha: time.Millisecond})
	a := w.AllocShared(n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rank := w.Rank(r)
			for dst := 0; dst < n; dst++ {
				rank.RPut(a, dst, r, []float64{float64(r + 1)}, nil)
			}
			rank.Barrier()
			loc := a.Local(r)
			for s := 0; s < n; s++ {
				if loc[s] != float64(s+1) {
					t.Errorf("rank %d slot %d = %v after barrier", r, s, loc[s])
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestWorldAccessors(t *testing.T) {
	w := NewWorld(3, simnet.CostModel{})
	if w.Size() != 3 || w.Rank(1).Size() != 3 || w.Rank(2).ID() != 2 {
		t.Fatal("accessors wrong")
	}
	a := w.AllocShared(5)
	if a.Len() != 5 {
		t.Fatal("len")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) must panic")
		}
	}()
	NewWorld(0, simnet.CostModel{})
}

func TestBarrierAsync(t *testing.T) {
	const n = 3
	w := NewWorld(n, simnet.CostModel{Alpha: time.Millisecond})
	a := w.AllocShared(n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rank := w.Rank(r)
			for dst := 0; dst < n; dst++ {
				rank.RPut(a, dst, r, []float64{float64(r + 1)}, nil)
			}
			done := make(chan struct{})
			rank.BarrierAsync(func() { close(done) })
			<-done
			loc := a.Local(r)
			for s := 0; s < n; s++ {
				if loc[s] != float64(s+1) {
					t.Errorf("rank %d slot %d = %v after async barrier", r, s, loc[s])
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestPeekLocksConsistently(t *testing.T) {
	w := NewWorld(2, simnet.CostModel{})
	a := w.AllocShared(1)
	w.Rank(0).RPut(a, 1, 0, []float64{3.5}, nil)
	w.Rank(0).Quiet()
	if got := a.Peek(1, 0); got != 3.5 {
		t.Fatalf("Peek = %v", got)
	}
}
