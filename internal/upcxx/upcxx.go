// Package upcxx implements the subset of UPC++ v1.0 that the HiPER UPC++
// module wraps: a PGAS shared heap with asynchronous one-sided rput/rget,
// remote procedure calls drained by an explicit progress function, and
// completion callbacks (UPC++ futures map onto HiPER futures in the
// module layer).
//
// HPGMG-FV's ghost-zone exchange is the paper's consumer: boxes rput face
// data into neighbours' shared arrays and chain dependent work on the
// completions.
//
// All remote operations — rput, rget, RPC control messages and their
// acknowledgements — are one-sided transfers on the World's transport
// (package fabric), so a UPC++ world composed over a shared fabric
// contends with MPI and SHMEM traffic for the same congestion windows.
package upcxx

import (
	"sync"

	"repro/internal/fabric"
	"repro/internal/simnet"
)

// World is an in-process UPC++ job of n ranks.
type World struct {
	n     int
	tr    fabric.Transport
	coll  *fabric.Coll
	ranks []*Rank
}

// NewWorld creates an n-rank job over a simulated interconnect with the
// given remote-access cost model.
func NewWorld(n int, cost simnet.CostModel) *World {
	if n <= 0 {
		panic("upcxx: world needs at least one rank")
	}
	return NewWorldOver(fabric.NewSim(n, cost))
}

// NewWorldOver creates a job over an existing transport, one rank per
// endpoint. Several library worlds may share one transport; their traffic
// then shares links, congestion windows, and locality domains.
func NewWorldOver(tr fabric.Transport) *World {
	w := &World{n: tr.Size(), tr: tr, coll: fabric.NewColl(tr)}
	w.ranks = make([]*Rank, w.n)
	for i := range w.ranks {
		w.ranks[i] = &Rank{w: w, id: i}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Transport exposes the underlying transport (for diagnostics and for
// composing further library worlds over the same endpoints).
func (w *World) Transport() fabric.Transport { return w.tr }

// Rank returns rank r's handle.
func (w *World) Rank(r int) *Rank { return w.ranks[r] }

// Rank is one process's handle on the job.
type Rank struct {
	w  *World
	id int

	rpcMu     sync.Mutex
	rpcQ      []func()
	rpcNotify func()
	pending   sync.WaitGroup // outstanding one-sided ops issued by this rank
}

// OnRPCEnqueued registers fn to be invoked (on the delivering goroutine)
// whenever an inbound RPC is enqueued at this rank. Progress-driving
// layers — like the HiPER UPC++ module's poller — use it to wake up
// without busy-watching the queue.
func (r *Rank) OnRPCEnqueued(fn func()) {
	r.rpcMu.Lock()
	r.rpcNotify = fn
	r.rpcMu.Unlock()
}

// ID returns the calling rank (upcxx::rank_me).
func (r *Rank) ID() int { return r.id }

// Size returns the job size (upcxx::rank_n).
func (r *Rank) Size() int { return r.w.n }

// Barrier synchronizes all ranks and flushes this rank's outstanding
// one-sided operations (upcxx::barrier).
func (r *Rank) Barrier() {
	r.pending.Wait()
	r.w.coll.Barrier()
}

// BarrierAsync arrives at the barrier once this rank's outstanding
// one-sided operations complete, and invokes onDone when all ranks have
// arrived. It never blocks the caller, so a scheduler can keep its workers
// busy (e.g. executing inbound RPCs other ranks' arrivals depend on).
func (r *Rank) BarrierAsync(onDone func()) {
	go func() {
		r.pending.Wait()
		r.w.coll.BarrierAsync(onDone)
	}()
}

// Quiet waits for this rank's outstanding one-sided operations.
func (r *Rank) Quiet() { r.pending.Wait() }

// SharedArray is a float64 array allocated in every rank's shared segment
// (one block per rank, like upcxx::new_array on each rank).
type SharedArray struct {
	w    *World
	data [][]float64
	mus  []sync.Mutex
}

// AllocShared allocates a shared array of length n per rank.
func (w *World) AllocShared(n int) *SharedArray {
	a := &SharedArray{w: w}
	a.data = make([][]float64, w.n)
	a.mus = make([]sync.Mutex, w.n)
	for i := range a.data {
		a.data[i] = make([]float64, n)
	}
	return a
}

// Len returns the per-rank length.
func (a *SharedArray) Len() int { return len(a.data[0]) }

// Local returns rank r's block for direct access; the caller is
// responsible for synchronization (after barrier / completion), as with
// upcxx::local_team access.
func (a *SharedArray) Local(r int) []float64 { return a.data[r] }

// Peek reads one element of rank r's block under the write lock, with no
// modelled delay. Counter-based synchronization protocols (sequence
// numbers rput alongside payloads) use it for cheap local polling.
func (a *SharedArray) Peek(r, i int) float64 {
	a.mus[r].Lock()
	v := a.data[r][i]
	a.mus[r].Unlock()
	return v
}

// RPut asynchronously copies vals into dst's block at off. onRemote (may
// be nil) runs when the data is remotely visible — UPC++'s remote
// completion. The source is captured eagerly (source completion is
// immediate).
func (r *Rank) RPut(a *SharedArray, dst, off int, vals []float64, onRemote func()) {
	cp := make([]float64, len(vals))
	copy(cp, vals)
	r.pending.Add(1)
	r.w.tr.Put(r.id, dst, 8*len(cp), func() {
		a.mus[dst].Lock()
		copy(a.data[dst][off:], cp)
		a.mus[dst].Unlock()
	}, func() {
		if onRemote != nil {
			onRemote()
		}
		r.pending.Done()
	})
}

// RGet asynchronously copies n elements from src's block at off and
// delivers them to cb — UPC++'s operation completion.
func (r *Rank) RGet(a *SharedArray, src, off, n int, cb func([]float64)) {
	out := make([]float64, n)
	r.pending.Add(1)
	r.w.tr.Get(r.id, src, 8*n, func() {
		a.mus[src].Lock()
		copy(out, a.data[src][off:off+n])
		a.mus[src].Unlock()
	}, func() {
		cb(out)
		r.pending.Done()
	})
}

// RPC enqueues fn to execute on rank dst the next time dst calls Progress
// (upcxx::rpc with the master persona). onDone (may be nil) runs — on an
// arbitrary goroutine — after fn returns, modelling the round-trip
// acknowledgement future.
func (r *Rank) RPC(dst int, fn func(target *Rank), onDone func()) {
	target := r.w.ranks[dst]
	r.pending.Add(1)
	// The request travels as a 64-byte control message; the acknowledgement
	// (when requested) as an 8-byte return transfer issued after fn runs.
	r.w.tr.Put(r.id, dst, 64, func() {
		target.rpcMu.Lock()
		target.rpcQ = append(target.rpcQ, func() {
			fn(target)
			if onDone != nil {
				r.w.tr.Put(dst, r.id, 8, nil, onDone)
			}
		})
		notify := target.rpcNotify
		target.rpcMu.Unlock()
		if notify != nil {
			notify()
		}
	}, r.pending.Done)
}

// Progress drains and executes this rank's pending RPCs, returning how
// many ran (upcxx::progress). Somebody on the rank must call Progress for
// inbound RPCs to execute — exactly the obligation the HiPER module
// discharges with a poller task.
func (r *Rank) Progress() int {
	r.rpcMu.Lock()
	q := r.rpcQ
	r.rpcQ = nil
	r.rpcMu.Unlock()
	for _, fn := range q {
		fn()
	}
	return len(q)
}

// PendingRPCs reports whether RPCs await Progress.
func (r *Rank) PendingRPCs() bool {
	r.rpcMu.Lock()
	defer r.rpcMu.Unlock()
	return len(r.rpcQ) > 0
}
