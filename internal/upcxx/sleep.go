package upcxx

import "repro/internal/spin"

// sleepFor is the precise simulation sleep behind a seam so
// timing-sensitive tests could substitute a virtual clock if needed.
var sleepFor = spin.Sleep
