// Command hiper-graph500 regenerates the paper's Section III-C2 study:
// distributed BFS over a Kronecker graph, comparing the polling reference
// against the HiPER shmem_async_when version.
//
// Usage:
//
//	hiper-graph500 [-full] [-ranks N] [-scale S] [-edgefactor E] [-repeats R]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/workloads/graph500"
)

func main() {
	full := flag.Bool("full", false, "run the full-size sweep (slower)")
	ranks := flag.Int("ranks", 0, "single run: rank count")
	scaleF := flag.Int("scale", 12, "graph scale (2^scale vertices)")
	ef := flag.Int("edgefactor", 16, "edges per vertex")
	repeats := flag.Int("repeats", 5, "repetitions per configuration")
	flag.Parse()

	if *ranks > 0 {
		g := graph500.GraphConfig{Scale: *scaleF, EdgeFactor: *ef, Seed: 5}
		cfg := graph500.RunConfig{Graph: g, Root: 1, Ranks: *ranks, Workers: 4, Cost: bench.Network()}
		for name, run := range map[string]func(graph500.RunConfig) (graph500.Result, error){
			"reference": graph500.RunReference, "hiper": graph500.RunHiPER,
		} {
			var last graph500.Result
			s := bench.Measure(1, *repeats, func() time.Duration {
				res, err := run(cfg)
				if err != nil {
					log.Fatal(err)
				}
				last = res
				return res.Elapsed
			})
			fmt.Printf("%-10s ranks=%-3d %s  visited=%d levels=%d\n",
				name, *ranks, s, last.Visited, last.Levels)
		}
		return
	}
	scale := bench.Quick
	if *full {
		scale = bench.Full
	}
	fig := bench.Graph500Study(os.Stdout, scale)
	fmt.Println(fig.Speedups("Reference (polling)"))
}
