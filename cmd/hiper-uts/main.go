// Command hiper-uts regenerates the paper's Figure 7: UTS unbalanced tree
// search strong scaling, comparing OpenSHMEM+OpenMP, OpenSHMEM+OpenMP
// Tasks, and HiPER AsyncSHMEM.
//
// Usage:
//
//	hiper-uts [-full] [-ranks N] [-threads T] [-b0 B] [-depth D] [-repeats R]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/workloads/uts"
)

func main() {
	full := flag.Bool("full", false, "run the full-size sweep (slower)")
	ranks := flag.Int("ranks", 0, "single run: rank count")
	threads := flag.Int("threads", 4, "threads per rank")
	b0 := flag.Int("b0", 4, "root branching factor")
	depth := flag.Int("depth", 12, "tree taper depth (GenMax)")
	repeats := flag.Int("repeats", 5, "repetitions per configuration")
	flag.Parse()

	if *ranks > 0 {
		tree := uts.TreeConfig{B0: *b0, GenMax: *depth, Seed: 19}
		fmt.Printf("tree: %d nodes (sequential oracle)\n", uts.CountSequential(tree))
		cfg := uts.RunConfig{Tree: tree, Ranks: *ranks, Threads: *threads, Cost: bench.Network()}
		for name, run := range map[string]func(uts.RunConfig) (uts.Result, error){
			"shmem+omp": uts.RunSHMEMOMP, "shmem+omp-tasks": uts.RunSHMEMOMPTasks, "hiper": uts.RunHiPER,
		} {
			s := bench.Measure(1, *repeats, func() time.Duration {
				res, err := run(cfg)
				if err != nil {
					log.Fatal(err)
				}
				return res.Elapsed
			})
			fmt.Printf("%-16s ranks=%-3d %s\n", name, *ranks, s)
		}
		return
	}
	scale := bench.Quick
	if *full {
		scale = bench.Full
	}
	fig := bench.Fig7UTS(os.Stdout, scale)
	fmt.Println(fig.Speedups("OpenSHMEM+OMP"))
}
