// Command hiper-bench regenerates every table and figure of the paper's
// evaluation section in one run: Figures 4-7 and the Graph500 study. It can
// also run the scheduler hot-path microbenchmarks and emit them as
// machine-readable JSON for cross-PR perf tracking.
//
// Usage:
//
//	hiper-bench [-full] [-only fig4|fig5|fig6|fig7|graph500]
//	hiper-bench -sched [-full] [-workers N] [-schedout BENCH_scheduler.json]
//	hiper-bench -comm [-full] [-commout BENCH_comm.json]
//	hiper-bench -commgate BENCH_comm.json
//	hiper-bench -policy [-full] [-policyout BENCH_policy.json]
//	hiper-bench -policygate BENCH_scheduler.json
//	hiper-bench -chaos [-full] [-chaosout BENCH_resilience.json]
//	hiper-bench -elastic [-full] [-elasticout BENCH_elastic.json]
//	hiper-bench -elasticgate BENCH_elastic.json
//	hiper-bench -supervise [-full] [-superviseout BENCH_supervise.json]
//	hiper-bench -supervisegate BENCH_supervise.json
//	hiper-bench -trace out.json [-workers N]
//	hiper-bench -tracebench BENCH_trace.json [-full] [-workers N]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/hiper"
	"repro/internal/bench"
)

func main() {
	full := flag.Bool("full", false, "run the full-size sweeps (slower)")
	only := flag.String("only", "", "run a single experiment: fig4|fig5|fig6|fig7|graph500")
	showStats := flag.Bool("stats", false, "print per-module API time statistics afterwards")
	sched := flag.Bool("sched", false, "run the scheduler hot-path microbenchmarks instead of the paper figures")
	schedOut := flag.String("schedout", "BENCH_scheduler.json", "path for the scheduler benchmark JSON report")
	comm := flag.Bool("comm", false, "run the transport-layer communication microbenchmarks instead of the paper figures")
	commOut := flag.String("commout", "BENCH_comm.json", "path for the communication benchmark JSON report")
	commGate := flag.String("commgate", "", "rerun the quick communication subset and fail on >3x ns/op regression vs the committed report at this path")
	policyAB := flag.Bool("policy", false, "run the scheduling-policy A/B workload benchmarks instead of the paper figures")
	policyOut := flag.String("policyout", "BENCH_policy.json", "path for the policy A/B benchmark JSON report")
	policyGate := flag.String("policygate", "", "rerun fanout-wake under WithPolicy(RandomSteal) and fail on regression vs the committed scheduler report at this path")
	chaos := flag.Bool("chaos", false, "run the fault-injection resilience benchmarks instead of the paper figures")
	chaosOut := flag.String("chaosout", "BENCH_resilience.json", "path for the resilience benchmark JSON report")
	elastic := flag.Bool("elastic", false, "run the elasticity benchmarks (migration + resize vs static baseline) instead of the paper figures")
	elasticOut := flag.String("elasticout", "BENCH_elastic.json", "path for the elasticity benchmark JSON report")
	elasticGate := flag.String("elasticgate", "", "rerun the quick elastic ISx comparison and fail on >3x ns/phase regression vs the committed report at this path")
	supervise := flag.Bool("supervise", false, "run the self-healing benchmarks (unscripted kills under phi-accrual supervision) instead of the paper figures")
	superviseOut := flag.String("superviseout", "BENCH_supervise.json", "path for the self-healing benchmark JSON report")
	superviseGate := flag.String("supervisegate", "", "rerun the quick supervised ISx run and fail on >3x MTTR regression vs the committed report at this path")
	tracePath := flag.String("trace", "", "run a traced demo workload and write its Chrome trace JSON here (load at ui.perfetto.dev)")
	traceBench := flag.String("tracebench", "", "run the tracing overhead microbenchmarks and write the JSON report here")
	workers := flag.Int("workers", 0, "worker count for -sched/-trace/-tracebench (0 = GOMAXPROCS)")
	flag.Parse()

	scale := bench.Quick
	if *full {
		scale = bench.Full
	}
	if *sched {
		rep := bench.SchedulerSuite(*workers, scale)
		fmt.Print(rep.Render())
		if err := rep.WriteJSON(*schedOut); err != nil {
			log.Fatalf("writing %s: %v", *schedOut, err)
		}
		fmt.Printf("wrote %s\n", *schedOut)
		return
	}
	if *policyGate != "" {
		if err := bench.PolicyGate(*policyGate); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("policygate ok vs %s\n", *policyGate)
		return
	}
	if *policyAB {
		rep, err := bench.PolicySuite(scale)
		if err != nil {
			log.Fatalf("policy suite: %v", err)
		}
		fmt.Print(rep.Render())
		if err := rep.WriteJSON(*policyOut); err != nil {
			log.Fatalf("writing %s: %v", *policyOut, err)
		}
		fmt.Printf("wrote %s\n", *policyOut)
		return
	}
	if *commGate != "" {
		if err := bench.CommGate(*commGate); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("commgate ok vs %s\n", *commGate)
		return
	}
	if *comm {
		rep := bench.CommSuite(scale)
		fmt.Print(rep.Render())
		if err := rep.WriteJSON(*commOut); err != nil {
			log.Fatalf("writing %s: %v", *commOut, err)
		}
		fmt.Printf("wrote %s\n", *commOut)
		return
	}
	if *chaos {
		rep, err := bench.ResilienceSuite(scale)
		if err != nil {
			log.Fatalf("resilience suite: %v", err)
		}
		fmt.Print(rep.Render())
		if err := rep.WriteJSON(*chaosOut); err != nil {
			log.Fatalf("writing %s: %v", *chaosOut, err)
		}
		fmt.Printf("wrote %s\n", *chaosOut)
		return
	}
	if *elasticGate != "" {
		if err := bench.ElasticGate(*elasticGate); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("elasticgate ok vs %s\n", *elasticGate)
		return
	}
	if *elastic {
		rep, err := bench.ElasticSuite(scale)
		if err != nil {
			log.Fatalf("elastic suite: %v", err)
		}
		fmt.Print(rep.Render())
		if err := rep.WriteJSON(*elasticOut); err != nil {
			log.Fatalf("writing %s: %v", *elasticOut, err)
		}
		fmt.Printf("wrote %s\n", *elasticOut)
		return
	}
	if *superviseGate != "" {
		if err := bench.SuperviseGate(*superviseGate); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("supervisegate ok vs %s\n", *superviseGate)
		return
	}
	if *supervise {
		rep, err := bench.SuperviseSuite(scale)
		if err != nil {
			log.Fatalf("supervise suite: %v", err)
		}
		fmt.Print(rep.Render())
		if err := rep.WriteJSON(*superviseOut); err != nil {
			log.Fatalf("writing %s: %v", *superviseOut, err)
		}
		fmt.Printf("wrote %s\n", *superviseOut)
		return
	}
	if *traceBench != "" {
		rep := bench.TraceSuite(*workers, scale)
		fmt.Print(rep.Render())
		if err := rep.WriteJSON(*traceBench); err != nil {
			log.Fatalf("writing %s: %v", *traceBench, err)
		}
		fmt.Printf("wrote %s\n", *traceBench)
		return
	}
	if *tracePath != "" {
		if err := runTraced(*tracePath, *workers); err != nil {
			log.Fatal(err)
		}
		return
	}
	type exp struct {
		name     string
		run      func(io.Writer, bench.Scale) *bench.Figure
		baseline string
	}
	exps := []exp{
		{"fig4", bench.Fig4HPGMG, "MPI+OMP (reference)"},
		{"fig5", bench.Fig5ISx, "Flat OpenSHMEM"},
		{"fig6", bench.Fig6GEO, "MPI+CUDA (blocking)"},
		{"fig7", bench.Fig7UTS, "OpenSHMEM+OMP"},
		{"graph500", bench.Graph500Study, "Reference (polling)"},
	}
	ran := 0
	for _, e := range exps {
		if *only != "" && *only != e.name {
			continue
		}
		t0 := time.Now()
		fig := e.run(os.Stdout, scale)
		fmt.Println(fig.Speedups(e.baseline))
		fmt.Printf("(%s swept in %v)\n", e.name, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		log.Fatalf("unknown experiment %q", *only)
	}
	if *showStats {
		fmt.Println()
		fmt.Print(hiper.StatsReport())
	}
}

// runTraced executes a representative ~100k-task workload — spawn bursts,
// future suspensions, steal-heavy fan-outs from a single origin — with
// tracing enabled, writes the Chrome trace JSON to path, and prints the
// text summary.
func runTraced(path string, workers int) error {
	rt, err := hiper.New(
		hiper.WithWorkers(workers),
		hiper.WithTracing(hiper.TraceConfig{OutPath: path, PprofLabels: true}),
	)
	if err != nil {
		return err
	}
	const (
		rounds = 100
		batch  = 1000 // rounds × batch ≈ 100k tasks
	)
	rt.Launch(func(c *hiper.Ctx) {
		for r := 0; r < rounds; r++ {
			c.Finish(func(c *hiper.Ctx) {
				// Steal-heavy: the whole burst originates in one deque column.
				for i := 0; i < batch; i++ {
					c.Async(func(*hiper.Ctx) {
						x := 1
						for k := 0; k < 64; k++ {
							x = x*2654435761 + k
						}
						_ = x
					})
				}
			})
			// One suspension per round exercises the async-span track.
			f := c.AsyncFuture(func(*hiper.Ctx) any { return r })
			c.Wait(f)
		}
	})
	fmt.Print(rt.TraceSummary(8))
	if err := rt.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (load it at https://ui.perfetto.dev)\n", path)
	return nil
}
