// Command hiper-bench regenerates every table and figure of the paper's
// evaluation section in one run: Figures 4-7 and the Graph500 study. It can
// also run the scheduler hot-path microbenchmarks and emit them as
// machine-readable JSON for cross-PR perf tracking.
//
// Usage:
//
//	hiper-bench [-full] [-only fig4|fig5|fig6|fig7|graph500]
//	hiper-bench -sched [-full] [-workers N] [-schedout BENCH_scheduler.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/stats"
)

func main() {
	full := flag.Bool("full", false, "run the full-size sweeps (slower)")
	only := flag.String("only", "", "run a single experiment: fig4|fig5|fig6|fig7|graph500")
	showStats := flag.Bool("stats", false, "print per-module API time statistics afterwards")
	sched := flag.Bool("sched", false, "run the scheduler hot-path microbenchmarks instead of the paper figures")
	schedOut := flag.String("schedout", "BENCH_scheduler.json", "path for the scheduler benchmark JSON report")
	workers := flag.Int("workers", 0, "worker count for -sched (0 = GOMAXPROCS)")
	flag.Parse()

	scale := bench.Quick
	if *full {
		scale = bench.Full
	}
	if *sched {
		rep := bench.SchedulerSuite(*workers, scale)
		fmt.Print(rep.Render())
		if err := rep.WriteJSON(*schedOut); err != nil {
			log.Fatalf("writing %s: %v", *schedOut, err)
		}
		fmt.Printf("wrote %s\n", *schedOut)
		return
	}
	type exp struct {
		name     string
		run      func(io.Writer, bench.Scale) *bench.Figure
		baseline string
	}
	exps := []exp{
		{"fig4", bench.Fig4HPGMG, "MPI+OMP (reference)"},
		{"fig5", bench.Fig5ISx, "Flat OpenSHMEM"},
		{"fig6", bench.Fig6GEO, "MPI+CUDA (blocking)"},
		{"fig7", bench.Fig7UTS, "OpenSHMEM+OMP"},
		{"graph500", bench.Graph500Study, "Reference (polling)"},
	}
	ran := 0
	for _, e := range exps {
		if *only != "" && *only != e.name {
			continue
		}
		t0 := time.Now()
		fig := e.run(os.Stdout, scale)
		fmt.Println(fig.Speedups(e.baseline))
		fmt.Printf("(%s swept in %v)\n", e.name, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		log.Fatalf("unknown experiment %q", *only)
	}
	if *showStats {
		fmt.Println()
		fmt.Print(stats.Report())
	}
}
