// Command hiper-platgen generates HiPER platform-model JSON files from a
// machine description, standing in for the paper's HWloc-based utilities.
// Users are free to edit the generated configuration.
//
// Usage:
//
//	hiper-platgen [-sockets N] [-cores N] [-gpus N] [-nvm] [-disk] [-nic] [-o file]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/platform"
)

func main() {
	sockets := flag.Int("sockets", 1, "CPU sockets")
	cores := flag.Int("cores", 4, "cores (workers) per socket")
	gpus := flag.Int("gpus", 0, "GPUs")
	nvm := flag.Bool("nvm", false, "include an NVM place")
	disk := flag.Bool("disk", false, "include a disk place")
	nic := flag.Bool("nic", true, "include an interconnect (NIC) place")
	scope := flag.String("steal-scope", "global", "steal path scope: global|socket")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	m, err := platform.Generate(platform.MachineSpec{
		Sockets:        *sockets,
		CoresPerSocket: *cores,
		GPUs:           *gpus,
		NVM:            *nvm,
		Disk:           *disk,
		Interconnect:   *nic,
		StealScope:     *scope,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := m.SaveFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d places, %d workers\n", *out, m.NumPlaces(), m.NumWorkers())
		return
	}
	data, err := m.MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
}
