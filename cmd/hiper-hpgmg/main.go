// Command hiper-hpgmg regenerates the paper's Figure 4: HPGMG-FV
// (miniature) weak scaling, comparing the MPI+OpenMP reference hybrid
// against HiPER composing the UPC++ and MPI modules.
//
// Usage:
//
//	hiper-hpgmg [-full] [-ranks N] [-n DIM] [-nz Z] [-cycles C] [-repeats R]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/workloads/hpgmg"
)

func main() {
	full := flag.Bool("full", false, "run the full-size sweep (slower)")
	ranks := flag.Int("ranks", 0, "single run: rank count")
	n := flag.Int("n", 32, "plane dimension (nx = ny)")
	nz := flag.Int("nz", 16, "planes per rank (fine level)")
	cycles := flag.Int("cycles", 3, "V-cycles")
	repeats := flag.Int("repeats", 5, "repetitions per configuration")
	flag.Parse()

	if *ranks > 0 {
		cfg := hpgmg.Config{N: *n, NZ: *nz, Ranks: *ranks, Workers: 4,
			Cycles: *cycles, Cost: bench.Network()}
		for name, run := range map[string]func(hpgmg.Config) (hpgmg.Result, error){
			"mpi+omp": hpgmg.RunReference, "hiper": hpgmg.RunHiPER,
		} {
			var last hpgmg.Result
			s := bench.Measure(1, *repeats, func() time.Duration {
				res, err := run(cfg)
				if err != nil {
					log.Fatal(err)
				}
				last = res
				return res.Elapsed
			})
			fmt.Printf("%-10s ranks=%-3d %s  residuals=%.3g -> %.3g\n",
				name, *ranks, s, last.Residuals[0], last.Residuals[len(last.Residuals)-1])
		}
		return
	}
	scale := bench.Quick
	if *full {
		scale = bench.Full
	}
	fig := bench.Fig4HPGMG(os.Stdout, scale)
	fmt.Println(fig.Speedups("MPI+OMP (reference)"))
}
