// Command hiper-isx regenerates the paper's Figure 5: ISx integer-sort
// weak scaling, comparing flat OpenSHMEM, OpenSHMEM+OpenMP, and HiPER
// AsyncSHMEM.
//
// Usage:
//
//	hiper-isx [-full] [-pes N] [-threads T] [-keys K] [-repeats R]
//
// With explicit flags a single configuration is run and reported; without
// them the full weak-scaling sweep prints the figure.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/workloads/isx"
)

func main() {
	full := flag.Bool("full", false, "run the full-size sweep (slower)")
	pes := flag.Int("pes", 0, "single run: total PEs (cores)")
	threads := flag.Int("threads", 4, "threads per hybrid rank")
	keys := flag.Int("keys", 1<<13, "keys per PE")
	repeats := flag.Int("repeats", 5, "repetitions per configuration")
	flag.Parse()

	if *pes > 0 {
		cfg := isx.Config{PEs: *pes, Threads: *threads, KeysPerPE: *keys,
			Cost: bench.Network(), Seed: 42}
		for name, run := range map[string]func(isx.Config) (isx.Result, error){
			"flat-shmem": isx.RunFlat, "shmem+omp": isx.RunHybridOMP, "hiper": isx.RunHiPER,
		} {
			s := bench.Measure(1, *repeats, func() time.Duration {
				res, err := run(cfg)
				if err != nil {
					log.Fatal(err)
				}
				return res.Elapsed
			})
			fmt.Printf("%-12s pes=%-4d keys/PE=%-8d %s\n", name, *pes, *keys, s)
		}
		return
	}
	scale := bench.Quick
	if *full {
		scale = bench.Full
	}
	fig := bench.Fig5ISx(os.Stdout, scale)
	fmt.Println(fig.Speedups("Flat OpenSHMEM"))
}
