// Command hiper-geo regenerates the paper's Figure 6: GEO (3D geophysical
// stencil) weak scaling, comparing blocking MPI+CUDA against future-based
// HiPER.
//
// Usage:
//
//	hiper-geo [-full] [-ranks N] [-nx X] [-nz Z] [-steps S] [-repeats R]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/workloads/geo"
)

func main() {
	full := flag.Bool("full", false, "run the full-size sweep (slower)")
	ranks := flag.Int("ranks", 0, "single run: rank count")
	nx := flag.Int("nx", 64, "plane dimension (nx = ny)")
	nz := flag.Int("nz", 24, "planes per rank")
	steps := flag.Int("steps", 4, "time steps")
	repeats := flag.Int("repeats", 5, "repetitions per configuration")
	flag.Parse()

	if *ranks > 0 {
		cfg := geo.Config{NX: *nx, NY: *nx, NZ: *nz, Steps: *steps, Ranks: *ranks,
			Workers: 4, Cost: bench.Network(), GPU: bench.GPU(), Seed: 11,
			PollInterval: 2 * time.Microsecond}
		if err := geo.Validate(cfg); err != nil {
			log.Fatal(err)
		}
		fmt.Println("variants agree (checksum validated)")
		for name, run := range map[string]func(geo.Config) (geo.Result, error){
			"mpi+cuda": geo.RunMPICUDA, "hiper": geo.RunHiPER,
		} {
			s := bench.Measure(1, *repeats, func() time.Duration {
				res, err := run(cfg)
				if err != nil {
					log.Fatal(err)
				}
				return res.Elapsed
			})
			fmt.Printf("%-10s ranks=%-3d %s\n", name, *ranks, s)
		}
		return
	}
	scale := bench.Quick
	if *full {
		scale = bench.Full
	}
	fig := bench.Fig6GEO(os.Stdout, scale)
	fmt.Println(fig.Speedups("MPI+CUDA (blocking)"))
}
