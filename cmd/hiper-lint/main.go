// Command hiper-lint statically enforces the runtime's concurrency
// invariants over this module. It is pure stdlib (go/ast, go/parser,
// go/types): no analysis framework, no toolchain export data.
//
// Usage:
//
//	hiper-lint [flags] [packages]
//
// Packages are directory paths or module import paths; "./..." (the
// default) analyzes the whole module. Exit status: 0 when clean, 1 when
// findings were reported, 2 on usage or load errors — suitable for CI
// gating (make check runs it).
//
// Flags:
//
//	-json           emit findings as a JSON array instead of text
//	-enable  a,b    run only the named checkers
//	-disable a,b    run all but the named checkers
//	-audit          also report stale //hiperlint:ignore directives
//	-graph          dump the call graph and effect summaries, then exit
//	-list           print registered checkers and exit
//	-C dir          locate the module from dir instead of the cwd
//
// Findings are suppressed at the site with a justified directive:
//
//	//hiperlint:ignore <checker> <reason>
//
// In -audit mode a directive that suppresses nothing is itself a
// finding (checker "stale-suppression"), so suppressions cannot outlive
// the violation they excused. Under GitHub Actions (GITHUB_ACTIONS=true)
// findings are additionally emitted as ::error workflow commands, which
// the runner turns into inline PR annotations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as JSON")
		enable  = flag.String("enable", "", "comma-separated checkers to run (default: all)")
		disable = flag.String("disable", "", "comma-separated checkers to skip")
		audit   = flag.Bool("audit", false, "also report stale //hiperlint:ignore directives")
		graph   = flag.Bool("graph", false, "dump the call graph and effect summaries, then exit")
		list    = flag.Bool("list", false, "list registered checkers and exit")
		chdir   = flag.String("C", ".", "locate the enclosing module from this directory")
	)
	flag.Parse()

	if *list {
		for _, c := range lint.Checkers() {
			fmt.Printf("%-22s %s\n", c.Name(), c.Doc())
		}
		return
	}

	mod, err := lint.FindModule(*chdir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *graph {
		prog, _, err := lint.Load(mod, patterns)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		prog.DumpGraph(os.Stdout)
		return
	}
	cfg := lint.Config{Enable: splitList(*enable), Disable: splitList(*disable), Audit: *audit}

	findings, err := lint.Run(mod, patterns, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if os.Getenv("GITHUB_ACTIONS") == "true" {
		for _, f := range findings {
			fmt.Printf("::error file=%s,line=%d,col=%d::%s\n",
				f.File, f.Line, f.Col, escapeWorkflow(fmt.Sprintf("[%s] %s", f.Checker, f.Message)))
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "hiper-lint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// escapeWorkflow escapes a GitHub Actions workflow-command message: the
// runner parses %, CR, and LF, so they travel URL-style encoded.
func escapeWorkflow(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
