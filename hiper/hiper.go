// Package hiper is the public face of this HiPER implementation — a
// Highly Pluggable, Extensible, and Re-configurable scheduling framework
// for HPC (Grossman, Kumar, Vrvilo, Budimlić, Sarkar; IPDPS 2017).
//
// HiPER unifies computation, communication, and accelerator work as tasks
// on one generalized work-stealing runtime:
//
//	rt, _ := hiper.New() // workers = GOMAXPROCS; see WithWorkers, WithModel
//	defer rt.Close()
//	rt.Launch(func(c *hiper.Ctx) {
//	    c.Finish(func(c *hiper.Ctx) {
//	        fut := c.AsyncFuture(func(*hiper.Ctx) any { return compute() })
//	        c.AsyncAwait(func(c *hiper.Ctx) { use(fut.Get()) }, fut)
//	    })
//	})
//
// The three HiPER components map to packages:
//
//   - the platform model (an undirected graph of hardware "places" with
//     per-worker pop and steal paths) lives in internal/platform, aliased
//     here as Model/Place/Kind;
//   - the generalized work-stealing runtime (per-place per-worker deques,
//     futures/promises, finish scopes, forasync loops, worker
//     substitution for blocking waits) lives in internal/core;
//   - pluggable modules — MPI, OpenSHMEM ("AsyncSHMEM"), CUDA, UPC++ —
//     live in internal/hiper* and are installed with Install.
//
// The type aliases below make the internal packages' documented APIs
// available to external users without a second layer of wrappers.
package hiper

import (
	"repro/internal/core"
	"repro/internal/modules"
	"repro/internal/platform"
	"repro/internal/policy"
)

// Core runtime types.
type (
	// Runtime is the generalized work-stealing runtime.
	Runtime = core.Runtime
	// Ctx is the execution context threaded through every task body.
	Ctx = core.Ctx
	// Future is a read-only handle on a promise's value.
	Future = core.Future
	// Promise is a single-assignment, thread-safe value container.
	Promise = core.Promise
	// Range is a 1D iteration space for Forasync loops.
	Range = core.Range
	// Buf names a memory region at a place for AsyncCopy.
	Buf = core.Buf
	// Options tunes runtime construction.
	Options = core.Options
	// Stats is a scheduler activity snapshot.
	Stats = core.Stats
)

// Failure-model types (see WithWatchdog and the error-propagating
// future/finish APIs: Promise.PutErr, Future.Err, Ctx.AsyncErr,
// Ctx.FinishErr).
type (
	// PanicError wraps a task panic isolated by the worker barrier: the
	// recovered value plus the goroutine stack at the panic site.
	PanicError = core.PanicError
	// WatchdogConfig configures the quiesce watchdog (see WithWatchdog).
	WatchdogConfig = core.WatchdogConfig
	// StallReport is the watchdog's structured diagnostic of a runtime
	// that failed to quiesce: open finish scopes, queue depths, worker
	// states, and the recent trace tail.
	StallReport = core.StallReport
)

// ErrStalled marks a wait the quiesce watchdog aborted; test with
// errors.Is.
var ErrStalled = core.ErrStalled

// Platform model types.
type (
	// Model is the platform model: an undirected graph of places plus the
	// worker pop/steal path configuration.
	Model = platform.Model
	// Place is a node of the platform model.
	Place = platform.Place
	// Kind classifies the hardware component a place represents.
	Kind = platform.Kind
	// MachineSpec describes a node for model generation.
	MachineSpec = platform.MachineSpec
)

// Module is the pluggable-module lifecycle contract.
type Module = modules.Module

// Scheduling-policy types (see WithPolicy). A policy plugs into the
// worker loop's three decision points: pop order, steal-victim selection
// with batch sizing, and place-group resolution for spawns.
type (
	// SchedPolicy is the pluggable scheduling-policy contract.
	SchedPolicy = core.SchedPolicy
	// PolicyRuntime is a policy's per-runtime state.
	PolicyRuntime = core.PolicyRuntime
	// PolicyWorker is a policy's per-worker-identity decision state.
	PolicyWorker = core.PolicyWorker
	// PolicyEnv is what a policy consults when building per-runtime state.
	PolicyEnv = core.PolicyEnv
	// SpawnOpt tunes a single task spawn (Cost, AtGroup) on the *With
	// spawn variants: Ctx.AsyncWith, AsyncFutureWith, AsyncDetachedWith.
	SpawnOpt = core.SpawnOpt
)

// The shipped scheduling policies, selectable via WithPolicy.
var (
	// RandomSteal is the default policy — exactly the runtime's built-in
	// behavior, at zero added cost.
	RandomSteal = policy.RandomSteal
	// HEFT schedules by heterogeneous earliest finish time, driven by
	// Cost spawn hints and the platform graph's compute/link costs.
	HEFT = policy.HEFT
	// CritPath pops the costliest pending work first and steals
	// locality-first (same-socket deque columns before crossing sockets).
	CritPath = policy.CritPath
)

// PolicyByName resolves a shipped policy by name ("random-steal", "heft",
// "critpath") — CLI and config plumbing.
func PolicyByName(name string) (SchedPolicy, error) { return policy.ByName(name) }

// Cost attaches an execution-cost estimate (abstract units, consistent
// within an application) to a spawn; cost-model policies like HEFT fold
// it into their per-place accounting.
func Cost(units float64) SpawnOpt { return core.Cost(units) }

// AtGroup offers the scheduler a set of candidate places for a spawn; the
// active policy resolves the concrete one.
func AtGroup(places ...*Place) SpawnOpt { return core.AtGroup(places...) }

// Standard place kinds.
const (
	KindSysMem       = platform.KindSysMem
	KindCache        = platform.KindCache
	KindGPU          = platform.KindGPU
	KindGPUMem       = platform.KindGPUMem
	KindInterconnect = platform.KindInterconnect
	KindNVM          = platform.KindNVM
	KindDisk         = platform.KindDisk
)

// NewPromise creates an unsatisfied promise bound to rt.
func NewPromise(rt *Runtime) *Promise { return core.NewPromise(rt) }

// Satisfied returns a pre-satisfied future holding v.
func Satisfied(rt *Runtime, v any) *Future { return core.Satisfied(rt, v) }

// WhenAll returns a future satisfied once all the given futures are.
func WhenAll(rt *Runtime, fs ...*Future) *Future { return core.WhenAll(rt, fs...) }

// At constructs a Buf for AsyncCopy.
func At(p *Place, data any) Buf { return core.At(p, data) }

// Install initializes a pluggable module on rt and registers its
// finalizer; see the internal/hipermpi, hipershmem, hipercuda, and
// hiperupcxx packages for the standard modules.
func Install(rt *Runtime, m Module) error { return modules.Install(rt, m) }

// MustInstall is Install that panics on error.
func MustInstall(rt *Runtime, m Module) { modules.MustInstall(rt, m) }

// LoadModel parses a platform model from JSON (see cmd/hiper-platgen).
func LoadModel(path string) (*Model, error) { return platform.LoadFile(path) }

// GenerateModel synthesizes a platform model from a machine description.
func GenerateModel(spec MachineSpec) (*Model, error) { return platform.Generate(spec) }
