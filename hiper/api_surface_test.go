package hiper_test

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/api_surface.golden from the current facade")

// TestFacadeSurface pins the facade's exported API: every exported
// symbol of package hiper must appear in testdata/api_surface.golden, so
// a symbol cannot be added to (or dropped from) the public surface
// without the diff showing up in review. Regenerate deliberately with
//
//	go test ./hiper -run TestFacadeSurface -update
func TestFacadeSurface(t *testing.T) {
	got := exportedSurface(t)
	golden := filepath.Join("testdata", "api_surface.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	want := strings.Split(strings.TrimSpace(string(data)), "\n")
	wantSet := map[string]bool{}
	for _, s := range want {
		wantSet[s] = true
	}
	gotSet := map[string]bool{}
	for _, s := range got {
		gotSet[s] = true
	}
	for _, s := range got {
		if !wantSet[s] {
			t.Errorf("exported symbol %q is not in %s — new public API must be added to the golden deliberately (-update)", s, golden)
		}
	}
	for _, s := range want {
		if !gotSet[s] {
			t.Errorf("golden symbol %q is gone from the facade — removing public API must update %s (-update)", s, golden)
		}
	}
}

// TestFacadeLeaksNoInternalTypes asserts that no exported declaration of
// package hiper names an internal package in its *signature*: internal
// types may only surface through the facade's own documented aliases.
// (Function bodies and the alias declarations themselves are the
// sanctioned crossing points and are exempt.)
func TestFacadeLeaksNoInternalTypes(t *testing.T) {
	fset := token.NewFileSet()
	pkg := parseFacade(t, fset)
	internalImports := map[string]bool{} // local name -> is internal
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if !strings.Contains(path, "/internal/") {
				continue
			}
			name := path[strings.LastIndex(path, "/")+1:]
			if imp.Name != nil {
				name = imp.Name.Name
			}
			internalImports[name] = true
		}
	}
	leak := func(decl string, typ ast.Expr) {
		ast.Inspect(typ, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && internalImports[id.Name] {
				t.Errorf("%s leaks internal type %s.%s in its signature; re-export it as a facade alias instead", decl, id.Name, sel.Sel.Name)
			}
			return true
		})
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !d.Name.IsExported() {
					continue
				}
				leak("func "+d.Name.Name, d.Type)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						// Alias declarations (type X = core.Y) are the
						// sanctioned re-export mechanism; only concrete
						// type definitions are audited.
						if s.Name.IsExported() && !s.Assign.IsValid() {
							leak("type "+s.Name.Name, s.Type)
						}
					case *ast.ValueSpec:
						// Vars/consts with an explicit internal type
						// annotation would force the internal name on
						// callers; inferred types flow through aliases.
						if s.Type == nil {
							continue
						}
						for _, n := range s.Names {
							if n.IsExported() {
								leak("var "+n.Name, s.Type)
							}
						}
					}
				}
			}
		}
	}
}

// exportedSurface lists package hiper's exported top-level symbols, one
// "kind Name" line per symbol, sorted.
func exportedSurface(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkg := parseFacade(t, fset)
	var out []string
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.IsExported() {
					out = append(out, "func "+d.Name.Name)
				}
			case *ast.GenDecl:
				kind := map[token.Token]string{token.TYPE: "type", token.VAR: "var", token.CONST: "const"}[d.Tok]
				if kind == "" {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							out = append(out, kind+" "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() {
								out = append(out, kind+" "+n.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

func parseFacade(t *testing.T, fset *token.FileSet) *ast.Package {
	t.Helper()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["hiper"]
	if !ok {
		t.Fatalf("package hiper not found in %v", func() []string {
			var n []string
			for k := range pkgs {
				n = append(n, k)
			}
			return n
		}())
	}
	return pkg
}
