package hiper_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/hiper"
)

// TestPanicIsolationThroughFacade: a task panic fails only its own finish
// scope; sibling work and later scopes on the same runtime are untouched.
func TestPanicIsolationThroughFacade(t *testing.T) {
	rt, err := hiper.New(hiper.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	var sibling, after bool
	launchErr := rt.Launch(func(c *hiper.Ctx) {
		if ferr := c.FinishErr(func(c *hiper.Ctx) {
			c.Async(func(*hiper.Ctx) { sibling = true })
			c.Async(func(*hiper.Ctx) { panic("task exploded") })
		}); ferr == nil {
			t.Error("FinishErr swallowed the task panic")
		} else {
			var pe *hiper.PanicError
			if !errors.As(ferr, &pe) {
				t.Errorf("scope error is not a PanicError: %v", ferr)
			} else if pe.Value != "task exploded" || !strings.Contains(string(pe.Stack), "failure_test") {
				t.Errorf("PanicError lost the panic site: value=%v", pe.Value)
			}
		}
		// The runtime is still healthy: a clean scope after the failed one.
		c.Finish(func(c *hiper.Ctx) {
			c.Async(func(*hiper.Ctx) { after = true })
		})
	})
	if launchErr != nil {
		t.Fatalf("isolated panic escaped to Launch: %v", launchErr)
	}
	if !sibling || !after {
		t.Fatalf("sibling=%v after=%v: healthy tasks were collateral damage", sibling, after)
	}
}

// TestErrorFuturesThroughFacade: PutErr / Err / AsyncErr round-trip
// through the facade aliases.
func TestErrorFuturesThroughFacade(t *testing.T) {
	rt, err := hiper.New(hiper.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	sentinel := errors.New("device lost")
	rt.Launch(func(c *hiper.Ctx) {
		p := hiper.NewPromise(rt)
		c.AsyncErr(func(*hiper.Ctx) error { return nil }) // clean path
		p.PutErr(sentinel)
		c.Wait(p.Future())
		if got := p.Future().Err(); !errors.Is(got, sentinel) {
			t.Errorf("Future.Err = %v, want %v", got, sentinel)
		}
	})
}

// TestWithWatchdogThroughFacade: a wedged wait trips the watchdog within
// the deadline, the report names the stalled scope, and Abort surfaces
// ErrStalled from Launch. The OnStall hook doubles as the release valve
// so the runtime can still shut down.
func TestWithWatchdogThroughFacade(t *testing.T) {
	var mu sync.Mutex
	var wedged *hiper.Promise
	var report *hiper.StallReport
	rt, err := hiper.New(
		hiper.WithWorkers(1),
		hiper.WithWatchdog(hiper.WatchdogConfig{
			Deadline: 150 * time.Millisecond,
			Abort:    true,
			OnStall: func(r *hiper.StallReport) {
				mu.Lock()
				defer mu.Unlock()
				report = r
				if wedged != nil && !wedged.Future().Done() {
					wedged.Put(nil)
				}
			},
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	start := time.Now()
	launchErr := rt.Launch(func(c *hiper.Ctx) {
		p := hiper.NewPromise(rt)
		mu.Lock()
		wedged = p
		mu.Unlock()
		c.Wait(p.Future())
	})
	if !errors.Is(launchErr, hiper.ErrStalled) {
		t.Fatalf("wedged Launch did not abort with ErrStalled: %v", launchErr)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("watchdog took %v to trip a 150ms deadline", waited)
	}
	mu.Lock()
	defer mu.Unlock()
	if report == nil {
		t.Fatal("OnStall never received a report")
	}
	if report.Op != "Launch" {
		t.Errorf("report.Op = %q, want Launch", report.Op)
	}
	if s := report.String(); !strings.Contains(s, "open finish scopes") {
		t.Errorf("report rendering lost its scope section:\n%s", s)
	}
}

// TestWithWatchdogValidation: a non-positive deadline is a construction
// error, not a silently unarmed watchdog.
func TestWithWatchdogValidation(t *testing.T) {
	if _, err := hiper.New(hiper.WithWatchdog(hiper.WatchdogConfig{})); err == nil {
		t.Fatal("WithWatchdog with zero deadline must error")
	}
}
