package hiper_test

import (
	"bytes"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/hiper"
	"repro/internal/platform"
	"repro/internal/stats"
)

// TestNewDefaults: zero options give a working GOMAXPROCS-wide runtime.
func TestNewDefaults(t *testing.T) {
	rt, err := hiper.New()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if got, want := rt.NumWorkers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("default runtime has %d workers, want GOMAXPROCS=%d", got, want)
	}
	var ran atomic.Int64
	rt.Launch(func(c *hiper.Ctx) {
		c.Finish(func(c *hiper.Ctx) {
			for i := 0; i < 100; i++ {
				c.Async(func(*hiper.Ctx) { ran.Add(1) })
			}
		})
	})
	if ran.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", ran.Load())
	}
}

// TestWithWorkersZeroMeansGOMAXPROCS: explicit 0 is "auto", not an error.
func TestWithWorkersZeroMeansGOMAXPROCS(t *testing.T) {
	rt, err := hiper.New(hiper.WithWorkers(0))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if got, want := rt.NumWorkers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("WithWorkers(0) gave %d workers, want %d", got, want)
	}
}

// TestShapeConflictsError: at most one of WithModel / WithWorkers /
// WithMachineSpec may pick the platform shape, and the error names both
// offending options.
func TestShapeConflictsError(t *testing.T) {
	m := platform.Default(2)
	cases := []struct {
		name string
		opts []hiper.Option
		want []string
	}{
		{"model+workers", []hiper.Option{hiper.WithModel(m), hiper.WithWorkers(2)},
			[]string{"WithWorkers", "WithModel"}},
		{"workers+spec", []hiper.Option{hiper.WithWorkers(2), hiper.WithMachineSpec(hiper.MachineSpec{Sockets: 1, CoresPerSocket: 2})},
			[]string{"WithMachineSpec", "WithWorkers"}},
		{"model+model", []hiper.Option{hiper.WithModel(m), hiper.WithModel(m)},
			[]string{"WithModel", "WithModel"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt, err := hiper.New(tc.opts...)
			if err == nil {
				rt.Close()
				t.Fatal("conflicting shape options did not error")
			}
			for _, frag := range tc.want {
				if !strings.Contains(err.Error(), frag) {
					t.Fatalf("error %q does not name %s", err, frag)
				}
			}
		})
	}
}

// TestInvalidOptionValuesError covers per-option validation.
func TestInvalidOptionValuesError(t *testing.T) {
	cases := map[string]hiper.Option{
		"WithWorkers(-1)":          hiper.WithWorkers(-1),
		"WithModel(nil)":           hiper.WithModel(nil),
		"WithMaxBlockedWorkers(0)": hiper.WithMaxBlockedWorkers(0),
		"WithSpinRounds(-3)":       hiper.WithSpinRounds(-3),
	}
	for name, opt := range cases {
		t.Run(name, func(t *testing.T) {
			rt, err := hiper.New(opt)
			if err == nil {
				rt.Close()
				t.Fatal("invalid option value did not error")
			}
		})
	}
}

// TestWithTracingArmsTracer: WithTracing gives a runtime whose trace can
// be dumped through the facade and summarized from the dumped bytes.
func TestWithTracingArmsTracer(t *testing.T) {
	rt, err := hiper.New(hiper.WithWorkers(2), hiper.WithTracing(hiper.TraceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Launch(func(c *hiper.Ctx) {
		c.Finish(func(c *hiper.Ctx) {
			for i := 0; i < 50; i++ {
				c.Async(func(*hiper.Ctx) {})
			}
		})
	})
	var buf bytes.Buffer
	if err := hiper.TraceDump(rt, &buf); err != nil {
		t.Fatalf("TraceDump: %v", err)
	}
	sum, err := hiper.SummarizeTrace(buf.Bytes(), 4)
	if err != nil {
		t.Fatalf("SummarizeTrace: %v", err)
	}
	if !strings.Contains(sum, "tasks") {
		t.Fatalf("summary looks empty:\n%s", sum)
	}
}

// TestTraceDumpWithoutTracingErrors: un-armed runtimes reject dumps.
func TestTraceDumpWithoutTracingErrors(t *testing.T) {
	rt, err := hiper.New(hiper.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := hiper.TraceDump(rt, &bytes.Buffer{}); err == nil {
		t.Fatal("TraceDump on an un-armed runtime should error")
	}
}

// TestWithStatsToggle: WithStats flips the global collection gate.
func TestWithStatsToggle(t *testing.T) {
	defer stats.Enabled.Store(true)
	rt, err := hiper.New(hiper.WithWorkers(1), hiper.WithStats(false))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Enabled.Load() {
		t.Fatal("WithStats(false) left collection enabled")
	}
	rt.Close()
	rt2, err := hiper.New(hiper.WithWorkers(1), hiper.WithStats(true))
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	if !stats.Enabled.Load() {
		t.Fatal("WithStats(true) left collection disabled")
	}
}

// TestCloseIdempotentThroughFacade: double Close is safe and error-free.
func TestCloseIdempotentThroughFacade(t *testing.T) {
	rt, err := hiper.New(hiper.WithWorkers(2), hiper.WithTracing(hiper.TraceConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	rt.Launch(func(c *hiper.Ctx) { c.Async(func(*hiper.Ctx) {}) })
	if err := rt.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestStatsReportThroughFacade: the facade exposes the stats report.
func TestStatsReportThroughFacade(t *testing.T) {
	stats.Reset()
	defer stats.Reset()
	stats.SetGauge("facade", "probe", 1)
	if rep := hiper.StatsReport(); !strings.Contains(rep, "probe") {
		t.Fatalf("StatsReport missing gauge:\n%s", rep)
	}
}

// TestDefaultPolicySelected: a runtime built without WithPolicy reports the
// built-in random-steal policy.
func TestDefaultPolicySelected(t *testing.T) {
	rt, err := hiper.New(hiper.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if got := rt.Policy(); got != "random-steal" {
		t.Fatalf("default policy = %q, want random-steal", got)
	}
	if got := rt.Stats().Policy; got != "random-steal" {
		t.Fatalf("Stats().Policy = %q, want random-steal", got)
	}
}

// TestWithPolicySelection: each shipped policy is selectable, runs a
// workload, and its name lands in the runtime's stats snapshot.
func TestWithPolicySelection(t *testing.T) {
	for _, pol := range []hiper.SchedPolicy{hiper.RandomSteal, hiper.HEFT, hiper.CritPath} {
		t.Run(pol.Name(), func(t *testing.T) {
			rt, err := hiper.New(hiper.WithWorkers(2), hiper.WithPolicy(pol))
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			var ran atomic.Int64
			rt.Launch(func(c *hiper.Ctx) {
				c.Finish(func(c *hiper.Ctx) {
					for i := 0; i < 200; i++ {
						c.Async(func(*hiper.Ctx) { ran.Add(1) })
					}
				})
			})
			if ran.Load() != 200 {
				t.Fatalf("ran %d tasks under %s, want 200", ran.Load(), pol.Name())
			}
			if got := rt.Stats().Policy; got != pol.Name() {
				t.Fatalf("Stats().Policy = %q, want %q", got, pol.Name())
			}
		})
	}
}

// TestWithPolicyNilErrors: the default is selected by omitting the option,
// not by passing nil.
func TestWithPolicyNilErrors(t *testing.T) {
	rt, err := hiper.New(hiper.WithWorkers(1), hiper.WithPolicy(nil))
	if err == nil {
		rt.Close()
		t.Fatal("WithPolicy(nil) did not error")
	}
	if !strings.Contains(err.Error(), "WithPolicy") {
		t.Fatalf("error %q does not name WithPolicy", err)
	}
}

// TestWithPolicyConflict: a runtime has exactly one policy, and the
// conflict error names both contenders.
func TestWithPolicyConflict(t *testing.T) {
	rt, err := hiper.New(hiper.WithWorkers(1),
		hiper.WithPolicy(hiper.HEFT), hiper.WithPolicy(hiper.CritPath))
	if err == nil {
		rt.Close()
		t.Fatal("duplicate WithPolicy did not error")
	}
	for _, frag := range []string{"heft", "critpath"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("conflict error %q does not name %s", err, frag)
		}
	}
}

// TestPolicyByName: the CLI plumbing resolves every shipped policy and
// rejects unknown names.
func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"random-steal", "heft", "critpath"} {
		pol, err := hiper.PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if pol.Name() != name {
			t.Fatalf("PolicyByName(%q).Name() = %q", name, pol.Name())
		}
	}
	if _, err := hiper.PolicyByName("fifo"); err == nil {
		t.Fatal("PolicyByName(fifo) did not error")
	}
}

// TestPolicyVisibleInStatsReport: Runtime.Close publishes the active
// policy as a stats gauge even without tracing armed, so A/B runs are
// attributable from the report alone.
func TestPolicyVisibleInStatsReport(t *testing.T) {
	stats.Reset()
	defer stats.Reset()
	rt, err := hiper.New(hiper.WithWorkers(1), hiper.WithPolicy(hiper.HEFT))
	if err != nil {
		t.Fatal(err)
	}
	rt.Launch(func(c *hiper.Ctx) { c.Async(func(*hiper.Ctx) {}) })
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if rep := hiper.StatsReport(); !strings.Contains(rep, "policy[heft]") {
		t.Fatalf("stats report does not attribute the policy:\n%s", rep)
	}
}

// TestRandomStealMatchesDefault: WithPolicy(RandomSteal) selects the same
// built-in scheduler path as omitting the option — on a single worker the
// same fixed workload must produce identical task and pop/steal counts.
func TestRandomStealMatchesDefault(t *testing.T) {
	run := func(opts ...hiper.Option) hiper.Stats {
		rt, err := hiper.New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		rt.Launch(func(c *hiper.Ctx) {
			c.Finish(func(c *hiper.Ctx) {
				for i := 0; i < 64; i++ {
					c.Async(func(c *hiper.Ctx) {
						for j := 0; j < 4; j++ {
							c.Async(func(*hiper.Ctx) {})
						}
					})
				}
			})
		})
		return rt.Stats()
	}
	def := run(hiper.WithWorkers(1))
	sel := run(hiper.WithWorkers(1), hiper.WithPolicy(hiper.RandomSteal))
	def.Policy, sel.Policy = "", "" // names differ only in how they were chosen
	if def != sel {
		t.Fatalf("WithPolicy(RandomSteal) diverged from the default scheduler:\ndefault:  %+v\nselected: %+v", def, sel)
	}
}
