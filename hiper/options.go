package hiper

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TraceConfig configures the runtime's tracing layer (see WithTracing):
// ring sizing, pprof labelling, and the Chrome trace output path flushed
// by Runtime.Close.
type TraceConfig = trace.Config

// config accumulates the effect of the functional options handed to New.
type config struct {
	// Exactly one platform-shape source may be set: an explicit model, a
	// machine spec to generate one from, or a worker count for the default
	// single-socket model. `shape` remembers which option claimed it so a
	// conflict error can name both sides.
	shape string
	model *Model
	spec  *MachineSpec

	workers    int
	traceCfg   *TraceConfig
	statsSet   bool
	statsOn    bool
	maxBlocked int
	spinRounds int
	watchdog   *WatchdogConfig
	policy     SchedPolicy
	policySet  string // option name that claimed the policy, for conflicts
}

// Option configures a runtime under construction; see New.
type Option func(*config) error

// claimShape enforces the one-platform-shape rule.
func (c *config) claimShape(opt string) error {
	if c.shape != "" {
		return fmt.Errorf("hiper: %s conflicts with %s: a runtime has exactly one platform shape", opt, c.shape)
	}
	c.shape = opt
	return nil
}

// WithModel runs the runtime over an explicit platform model (built by
// GenerateModel, LoadModel, or by hand). Conflicts with WithWorkers and
// WithMachineSpec.
func WithModel(m *Model) Option {
	return func(c *config) error {
		if m == nil {
			return fmt.Errorf("hiper: WithModel(nil)")
		}
		if err := c.claimShape("WithModel"); err != nil {
			return err
		}
		c.model = m
		return nil
	}
}

// WithWorkers runs the runtime over the default single-socket model with n
// workers; n == 0 selects GOMAXPROCS. Conflicts with WithModel and
// WithMachineSpec (an explicit model fixes its own worker count).
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("hiper: WithWorkers(%d): worker count cannot be negative", n)
		}
		if err := c.claimShape("WithWorkers"); err != nil {
			return err
		}
		c.workers = n
		return nil
	}
}

// WithMachineSpec generates the platform model from a machine description.
// Conflicts with WithModel and WithWorkers.
func WithMachineSpec(spec MachineSpec) Option {
	return func(c *config) error {
		if err := c.claimShape("WithMachineSpec"); err != nil {
			return err
		}
		c.spec = &spec
		return nil
	}
}

// WithTracing arms the runtime-wide tracing layer: per-worker lock-free
// event rings recording the full task lifecycle, exportable as Chrome
// trace JSON (TraceDump, Runtime.Close with cfg.OutPath) and summarized
// into derived scheduler metrics. Tracing left un-armed costs the task hot
// path a single pointer check.
func WithTracing(cfg TraceConfig) Option {
	return func(c *config) error {
		c.traceCfg = &cfg
		return nil
	}
}

// WithStats toggles the process-wide internal/stats collection layer
// (module API call counts and derived trace gauges). It is on by default;
// WithStats(false) reduces every stats hook to one atomic load.
func WithStats(enabled bool) Option {
	return func(c *config) error {
		c.statsSet, c.statsOn = true, enabled
		return nil
	}
}

// WithMaxBlockedWorkers bounds how many workers may block with substitutes
// running in their stead; n must be positive. Default 256.
func WithMaxBlockedWorkers(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("hiper: WithMaxBlockedWorkers(%d): bound must be positive", n)
		}
		c.maxBlocked = n
		return nil
	}
}

// WithSpinRounds sets how many full pop+steal scans a worker performs
// before parking; n must be positive. Default 2.
func WithSpinRounds(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("hiper: WithSpinRounds(%d): rounds must be positive", n)
		}
		c.spinRounds = n
		return nil
	}
}

// WithWatchdog arms the quiesce watchdog: any Launch, Finish drain, or
// Close that fails to quiesce within cfg.Deadline produces a structured
// StallReport (open finish scopes with labels, per-place queue depths,
// blocked and parked workers, the trace ring tail when tracing is armed)
// via cfg.OnStall, and — when cfg.Abort is set — fails the stalled wait
// with ErrStalled instead of hanging forever.
func WithWatchdog(cfg WatchdogConfig) Option {
	return func(c *config) error {
		if cfg.Deadline <= 0 {
			return fmt.Errorf("hiper: WithWatchdog: deadline must be positive, got %v", cfg.Deadline)
		}
		c.watchdog = &cfg
		return nil
	}
}

// WithPolicy selects the scheduling policy: RandomSteal (the default,
// zero-cost), HEFT, CritPath, or any custom SchedPolicy implementation.
// The policy decides pop order, steal-victim selection and batch sizing,
// and place-group resolution for spawns; see the internal/policy package
// docs for the shipped policies' cost models. A runtime has exactly one
// policy: repeating the option is a conflict, and WithPolicy(nil) is an
// error (omit the option for the default instead).
func WithPolicy(p SchedPolicy) Option {
	return func(c *config) error {
		if p == nil {
			return fmt.Errorf("hiper: WithPolicy(nil): omit the option for the default policy")
		}
		if c.policySet != "" {
			return fmt.Errorf("hiper: WithPolicy(%s) conflicts with WithPolicy(%s): a runtime has exactly one scheduling policy", p.Name(), c.policySet)
		}
		c.policy = p
		c.policySet = p.Name()
		return nil
	}
}

// New builds a runtime from functional options:
//
//	rt, err := hiper.New()                          // GOMAXPROCS workers, default model
//	rt, err := hiper.New(hiper.WithWorkers(8))      // fixed worker count
//	rt, err := hiper.New(hiper.WithModel(m),        // explicit platform model,
//	    hiper.WithTracing(hiper.TraceConfig{}))     // ... with tracing armed
//
// Options conflict (two platform shapes) or carry invalid values → New
// returns an error and no runtime. Pair every New with Runtime.Close.
func New(opts ...Option) (*Runtime, error) {
	var c config
	for _, opt := range opts {
		if err := opt(&c); err != nil {
			return nil, err
		}
	}
	if c.statsSet {
		stats.Enabled.Store(c.statsOn)
	}
	model := c.model
	switch {
	case c.spec != nil:
		m, err := platform.Generate(*c.spec)
		if err != nil {
			return nil, fmt.Errorf("hiper: generating model: %w", err)
		}
		model = m
	case model == nil:
		workers := c.workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		model = platform.Default(workers)
	}
	coreOpts := core.Options{
		MaxBlockedWorkers: c.maxBlocked,
		SpinRounds:        c.spinRounds,
		Trace:             c.traceCfg,
		Watchdog:          c.watchdog,
		Policy:            c.policy,
	}
	return core.New(model, &coreOpts)
}

// StatsReport renders the process-wide stats snapshot — per-module API
// call counts plus the derived trace gauges published by Runtime.Close —
// as a deterministic plain-text table.
func StatsReport() string { return stats.Report() }

// TraceDump writes rt's collected trace as Chrome trace-event JSON to w
// (load it at https://ui.perfetto.dev). It errors when rt was built
// without WithTracing.
func TraceDump(rt *Runtime, w io.Writer) error { return rt.TraceDump(w) }

// SummarizeTrace renders a previously dumped Chrome trace JSON as the
// plain-text top-N summary.
func SummarizeTrace(data []byte, topN int) (string, error) {
	return trace.Summarize(data, topN)
}
