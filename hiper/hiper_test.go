package hiper_test

import (
	"sync/atomic"
	"testing"

	"repro/hiper"
)

// The facade tests double as API usage examples.

func TestQuickstartShape(t *testing.T) {
	rt, err := hiper.New(hiper.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	var sum atomic.Int64
	rt.Launch(func(c *hiper.Ctx) {
		c.Finish(func(c *hiper.Ctx) {
			c.Forasync(hiper.Range{Lo: 1, Hi: 101, Grain: 10}, func(_ *hiper.Ctx, i int) {
				sum.Add(int64(i))
			})
		})
	})
	if sum.Load() != 5050 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestFuturesThroughFacade(t *testing.T) {
	rt, err := hiper.New(hiper.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Launch(func(c *hiper.Ctx) {
		p := hiper.NewPromise(rt)
		c.Async(func(c *hiper.Ctx) { c.Put(p, 21) })
		doubled := c.AsyncFutureAwait(func(c *hiper.Ctx) any {
			return p.Future().Get().(int) * 2
		}, p.Future())
		if got := c.Get(doubled); got != 42 {
			t.Fatalf("got %v", got)
		}
		done := hiper.WhenAll(rt, doubled, hiper.Satisfied(rt, nil))
		c.Wait(done)
	})
}

func TestGenerateAndRunModel(t *testing.T) {
	m, err := hiper.GenerateModel(hiper.MachineSpec{Sockets: 1, CoresPerSocket: 2, Interconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := hiper.New(hiper.WithModel(m))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	nic := m.FirstByKind(hiper.KindInterconnect)
	rt.Launch(func(c *hiper.Ctx) {
		c.Finish(func(c *hiper.Ctx) {
			c.AsyncAt(nic, func(cc *hiper.Ctx) {
				if cc.Place().Kind != hiper.KindInterconnect {
					t.Error("task ran at wrong place")
				}
			})
		})
	})
	if rt.Stats().TasksExecuted == 0 {
		t.Fatal("no tasks recorded")
	}
}

func TestModelRoundTripThroughFacade(t *testing.T) {
	m, err := hiper.GenerateModel(hiper.MachineSpec{Sockets: 1, CoresPerSocket: 2, GPUs: 1, Interconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.json"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := hiper.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumWorkers() != m.NumWorkers() || got.FirstByKind(hiper.KindGPU) == nil {
		t.Fatal("round trip lost structure")
	}
}
