// Quickstart: the HiPER task, future, and parallel-loop APIs in one page.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync/atomic"

	"repro/hiper"
)

func main() {
	// A runtime over the default platform model: one sysmem place every
	// worker services, plus an interconnect place for communication
	// modules. Workers <= 0 selects GOMAXPROCS.
	rt, err := hiper.New()
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	rt.Launch(func(c *hiper.Ctx) {
		// --- async + finish: bulk-synchronous task parallelism ---------
		var count atomic.Int64
		c.Finish(func(c *hiper.Ctx) {
			for i := 0; i < 100; i++ {
				c.Async(func(*hiper.Ctx) { count.Add(1) })
			}
		})
		fmt.Println("tasks completed inside finish:", count.Load())

		// --- futures: point-to-point dataflow --------------------------
		a := c.AsyncFuture(func(*hiper.Ctx) any { return 6 })
		b := c.AsyncFuture(func(*hiper.Ctx) any { return 7 })
		product := c.AsyncFutureAwait(func(*hiper.Ctx) any {
			return a.Get().(int) * b.Get().(int)
		}, a, b)
		fmt.Println("future dataflow result:", c.Get(product))

		// --- promises: explicit single-assignment channels --------------
		p := hiper.NewPromise(rt)
		c.Async(func(c *hiper.Ctx) { c.Put(p, "satisfied by another task") })
		fmt.Println("promise:", c.Get(p.Future()))

		// --- forasync: parallel loops over the work-stealing pool -------
		var sum atomic.Int64
		c.ForasyncSync(hiper.Range{Lo: 1, Hi: 1_000_001, Grain: 4096},
			func(_ *hiper.Ctx, i int) { sum.Add(int64(i)) })
		fmt.Println("forasync sum 1..1e6:", sum.Load())
	})

	s := rt.Stats()
	fmt.Printf("scheduler: %d tasks executed, %d pops, %d steals, %d substitutions\n",
		s.TasksExecuted, s.Pops, s.Steals, s.Substitutions)
}
