// AsyncSHMEM: the paper's novel shmem_async_when API. Where OpenSHMEM's
// wait APIs block a thread until a remote put changes local memory, HiPER
// predicates a TASK on the condition and offloads the polling to the
// runtime:
//
//	shmem_async_when(mem_addr, wait_for_val, [=] { body; });
//
// This example runs a token ring over simulated PEs: each PE arms an
// AsyncWhen handler for the token landing in its symmetric slot,
// increments it, and passes it on — no PE ever blocks a worker waiting.
//
//	go run ./examples/asyncshmem
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/hiper"
	"repro/internal/core"
	"repro/internal/hipershmem"
	"repro/internal/shmem"
	"repro/internal/simnet"
)

const (
	pes  = 4
	laps = 3
)

func main() {
	world := shmem.NewWorld(pes, simnet.CostModel{Alpha: 50 * time.Microsecond})
	slot := world.AllocInt64(1) // each PE's token mailbox

	var wg sync.WaitGroup
	for r := 0; r < pes; r++ {
		rt, err := hiper.New(hiper.WithWorkers(2))
		if err != nil {
			panic(err)
		}
		m := hipershmem.New(world.PE(r), nil)
		hiper.MustInstall(rt, m)

		wg.Add(1)
		go func(r int, rt *hiper.Runtime, m *hipershmem.Module) {
			defer wg.Done()
			defer rt.Close()
			rt.Launch(func(c *hiper.Ctx) {
				finalVal := int64(laps*pes + 1)
				done := core.NewPromise(rt)

				// Re-arming handler: fires each time the token value in OUR
				// slot grows past what we last saw.
				var arm func(cc *hiper.Ctx, seen int64)
				arm = func(cc *hiper.Ctx, seen int64) {
					m.AsyncWhen(cc, slot, 0, shmem.CmpGT, seen, func(hc *hiper.Ctx) {
						v := slot.Peek(r, 0)
						if v >= finalVal {
							hc.Put(done, v)
							return
						}
						fmt.Printf("PE %d holds token %d\n", r, v)
						if v == finalVal-1 {
							// Last hop: tell every PE the ring is done.
							for p := 0; p < pes; p++ {
								m.PutValue(hc, slot, p, 0, finalVal)
							}
							hc.Put(done, finalVal)
							return
						}
						next := (r + 1) % pes
						m.PutValue(hc, slot, next, 0, v+1)
						arm(hc, v)
					})
				}
				arm(c, 0)

				if r == 0 {
					// Kick off the ring.
					m.PutValue(c, slot, 0, 0, 1)
				}
				v := c.Get(done.Future())
				if r == 0 {
					fmt.Printf("ring complete after %d hops (final token %v)\n",
						laps*pes, v)
				}
			})
		}(r, rt, m)
	}
	wg.Wait()
}
