// Checkpoint: the paper's §V future-work module — asynchronous
// checkpointing of application state, overlapping checkpoint I/O with
// useful application work on the unified runtime.
//
// A time-stepping computation snapshots its state every K steps; each
// checkpoint is chained (with a future) on the step that produced the
// state and drains to simulated NVM while later steps keep computing.
// At the end, the run "fails" and a fresh runtime restores the last
// durable checkpoint.
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"time"

	"repro/hiper"
	"repro/internal/core"
	"repro/internal/hiperckpt"
)

const (
	cells      = 1 << 14
	steps      = 12
	checkEvery = 4
)

func newRuntime(store *hiperckpt.Store) (*hiper.Runtime, *hiperckpt.Module) {
	model, err := hiper.GenerateModel(hiper.MachineSpec{
		Sockets: 1, CoresPerSocket: 4, NVM: true, Interconnect: true,
	})
	if err != nil {
		panic(err)
	}
	rt, err := hiper.New(hiper.WithModel(model))
	if err != nil {
		panic(err)
	}
	km := hiperckpt.New(store)
	hiper.MustInstall(rt, km)
	return rt, km
}

func main() {
	store := hiperckpt.NewStore(hiperckpt.StoreConfig{
		Alpha:       6 * time.Millisecond, // flash-class write latency
		BytesPerSec: 1e9,
	})

	// ---- Phase 1: compute with overlapped checkpoints, then "crash". ----
	rt, km := newRuntime(store)
	state := make([]float64, cells)
	for i := range state {
		state[i] = float64(i % 7)
	}
	rt.Launch(func(c *hiper.Ctx) {
		var pendingCkpt *core.Future
		for t := 1; t <= steps; t++ {
			// One relaxation step, parallel on the pool.
			c.ForasyncSync(hiper.Range{Lo: 1, Hi: cells - 1, Grain: 1024},
				func(_ *hiper.Ctx, i int) {
					state[i] = 0.5*state[i] + 0.25*(state[i-1]+state[i+1])
				})
			if t%checkEvery == 0 {
				// Snapshot is eager; the write drains in the background
				// while the next steps run.
				pendingCkpt = km.CheckpointAsync(c, fmt.Sprintf("step-%03d", t), state)
				fmt.Printf("step %2d: checkpoint started (durable later)\n", t)
			} else {
				fmt.Printf("step %2d: compute only\n", t)
			}
		}
		c.Wait(pendingCkpt) // make the last checkpoint durable before "crashing"
	})
	rt.Close()
	fmt.Println("-- simulated failure: losing in-memory state --")

	// ---- Phase 2: a fresh runtime restores the last durable snapshot. ----
	rt2, km2 := newRuntime(store)
	defer rt2.Close()
	rt2.Launch(func(c *hiper.Ctx) {
		last := fmt.Sprintf("step-%03d", (steps/checkEvery)*checkEvery)
		restored, ok := km2.Restore(c, last)
		if !ok {
			fmt.Println("RESTORE FAILED")
			return
		}
		var sum float64
		for _, v := range restored {
			sum += v
		}
		fmt.Printf("restored %q: %d cells, checksum %.6f\n", last, len(restored), sum)
	})
}
