// Dataflow: a diamond-shaped task graph spanning THREE software
// components — host tasks, the simulated GPU (CUDA module), and the
// generic AsyncCopy data-movement API — composed purely with futures.
//
//	        load (host task)
//	       /                \
//	  h2d copy           checksum (host)
//	      |                   |
//	  GPU kernel              |
//	      |                   |
//	  d2h copy                |
//	       \                 /
//	        verify (awaits both)
//
//	go run ./examples/dataflow
package main

import (
	"fmt"

	"repro/hiper"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/hipercuda"
)

func main() {
	// A platform model with a GPU: the CUDA module requires gpu and gpumem
	// places and registers itself as the AsyncCopy handler for them.
	model, err := hiper.GenerateModel(hiper.MachineSpec{
		Sockets: 1, CoresPerSocket: 4, GPUs: 1, Interconnect: true,
	})
	if err != nil {
		panic(err)
	}
	rt, err := hiper.New(hiper.WithModel(model))
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	cm := hipercuda.New(cuda.NewDevice(cuda.Config{SMs: 4}), nil)
	hiper.MustInstall(rt, cm)

	const n = 1 << 16
	mem := model.FirstByKind(hiper.KindSysMem)
	gmem := cm.GPUMemPlace()

	rt.Launch(func(c *hiper.Ctx) {
		input := make([]float64, n)
		output := make([]float64, n)
		dev := cm.MustMalloc(n)

		// Source task: load the input.
		load := c.AsyncFuture(func(*hiper.Ctx) any {
			for i := range input {
				input[i] = float64(i % 97)
			}
			return nil
		})

		// Left branch: H2D copy (routed through the CUDA module by the
		// generic AsyncCopy API), then a GPU kernel, then D2H.
		h2d := c.AsyncCopyAwait(core.At(gmem, dev), core.At(mem, input), n, load)
		kernel := cm.ForasyncCUDAAwait(c, n, func(i int) {
			dev.Data()[i] = dev.Data()[i]*2 + 1
		}, h2d)
		d2h := c.AsyncCopyAwait(core.At(mem, output), core.At(gmem, dev), n, kernel)

		// Right branch: a host-side checksum of the input.
		sum := c.AsyncFutureAwait(func(*hiper.Ctx) any {
			var s float64
			for _, v := range input {
				s += v
			}
			return s
		}, load)

		// Sink: awaits both branches.
		verify := c.AsyncFutureAwait(func(cc *hiper.Ctx) any {
			want := sum.Get().(float64)*2 + float64(n)
			var got float64
			for _, v := range output {
				got += v
			}
			return got == want
		}, d2h, sum)

		if ok := c.Get(verify).(bool); ok {
			fmt.Println("dataflow verified: GPU branch and host branch agree")
		} else {
			fmt.Println("MISMATCH")
		}
	})

	s := rt.Stats()
	fmt.Printf("executed %d tasks across host and GPU places (%d steals)\n",
		s.TasksExecuted, s.Steals)
}
