// Stencil: the paper's Section II-D program — a 3D stencil whose grid is
// distributed in z across MPI ranks, each time step running a
// data-parallel kernel and a ghost exchange, expressed in HiPER's
// future-based composable model with the CUDA and MPI modules installed:
//
//	for t := range steps {
//	    finish {
//	        ghost  := forasync_future(...)          // boundary planes
//	        sends  := MPI_Isend_await(..., ghost)   // chained on the kernel
//	        recvs  := MPI_Irecv(...)
//	        forasync_cuda(interior)                 // overlaps the exchange
//	        async_copy_await(..., recvs)            // ghosts back to device
//	    }
//	}
//
// Dependencies are expressed naturally BETWEEN software components: each
// asynchronous operation waits on precisely the futures it needs, and
// blocking operations never block CPU workers.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/workloads/geo"
)

func main() {
	cfg := geo.Config{
		NX: 48, NY: 48, NZ: 16, Steps: 5, Ranks: 3, Workers: 4,
		Cost: bench.Network(), GPU: bench.GPU(), Seed: 11,
		PollInterval: 2 * time.Microsecond,
	}

	fmt.Println("3D stencil, z-distributed over", cfg.Ranks, "simulated ranks,",
		cfg.Steps, "time steps")

	ref, err := geo.RunMPICUDA(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  %-22s %v (checksum %.6f)\n", "MPI+CUDA blocking:", ref.Elapsed.Round(time.Microsecond), ref.Checksum)

	hip, err := geo.RunHiPER(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  %-22s %v (checksum %.6f)\n", "HiPER future-based:", hip.Elapsed.Round(time.Microsecond), hip.Checksum)

	if ref.Checksum == hip.Checksum {
		fmt.Println("results identical: the future graph preserved every dependency")
	} else {
		fmt.Println("WARNING: checksums differ!")
	}
}
