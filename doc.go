// Package repro is a from-scratch Go reproduction of "A Pluggable
// Framework for Composable HPC Scheduling Libraries" (Grossman, Kumar,
// Vrvilo, Budimlić, Sarkar; IPDPS 2017) — the HiPER runtime, its pluggable
// MPI / OpenSHMEM / CUDA / UPC++ modules, every substrate they need
// (simulated interconnect, PGAS heaps, GPU device), and the paper's full
// evaluation suite (HPGMG-FV, ISx, GEO, UTS, Graph500).
//
// Start at package repro/hiper for the public API, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the figure-by-figure
// reproduction record. The root-level benchmarks in bench_test.go
// regenerate each figure of the paper's evaluation section at smoke scale;
// cmd/hiper-bench runs the full sweeps.
package repro
