// Root benchmark harness: one benchmark per table/figure of the paper's
// evaluation section (Figures 4-7 and the Graph500 study), each
// regenerating the figure's sweep at smoke scale and reporting the HiPER
// speedup over the figure's baseline as a custom metric, plus ablation
// benchmarks for the design choices DESIGN.md calls out.
//
// Full-scale sweeps: go run ./cmd/hiper-bench -full
package repro_test

import (
	"io"
	"testing"
	"time"

	"repro/hiper"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/hipermpi"
	"repro/internal/modules"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/simnet"
	"repro/internal/workloads/uts"
)

// reportSpeedup attaches mean(baseline)/mean(series) at the largest x as a
// benchmark metric.
func reportSpeedup(b *testing.B, fig *bench.Figure, baseline, series string) {
	b.Helper()
	var base, other *bench.Series
	for _, s := range fig.Series {
		switch s.Name {
		case baseline:
			base = s
		case series:
			other = s
		}
	}
	if base == nil || other == nil || len(base.Points) == 0 || len(other.Points) == 0 {
		return
	}
	bp := base.Points[len(base.Points)-1]
	op := other.Points[len(other.Points)-1]
	if op.S.Mean > 0 {
		b.ReportMetric(float64(bp.S.Mean)/float64(op.S.Mean), "hiper-speedup-at-max-scale")
	}
}

// BenchmarkFig4HPGMG regenerates Figure 4 (HPGMG-FV weak scaling:
// MPI+OpenMP reference vs HiPER UPC+++MPI). Paper shape: comparable.
func BenchmarkFig4HPGMG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := bench.Fig4HPGMG(io.Discard, bench.Quick)
		reportSpeedup(b, fig, "MPI+OMP (reference)", "HiPER (UPC+++MPI)")
	}
}

// BenchmarkFig5ISx regenerates Figure 5 (ISx weak scaling: flat OpenSHMEM
// vs OpenSHMEM+OMP vs HiPER AsyncSHMEM). Paper shape: flat wins small,
// collapses at scale.
func BenchmarkFig5ISx(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := bench.Fig5ISx(io.Discard, bench.Quick)
		reportSpeedup(b, fig, "Flat OpenSHMEM", "HiPER AsyncSHMEM")
	}
}

// BenchmarkFig6GEO regenerates Figure 6 (GEO weak scaling: blocking
// MPI+CUDA vs future-based HiPER). Paper shape: HiPER consistently ahead.
func BenchmarkFig6GEO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := bench.Fig6GEO(io.Discard, bench.Quick)
		reportSpeedup(b, fig, "MPI+CUDA (blocking)", "HiPER (futures)")
	}
}

// BenchmarkFig7UTS regenerates Figure 7 (UTS strong scaling: hybrid
// OpenMP variants vs HiPER AsyncSHMEM). Paper shape: Tasks worst, HiPER
// degrades most gracefully.
func BenchmarkFig7UTS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := bench.Fig7UTS(io.Discard, bench.Quick)
		reportSpeedup(b, fig, "OpenSHMEM+OMP", "HiPER AsyncSHMEM")
	}
}

// BenchmarkGraph500 regenerates the Section III-C2 BFS study (polling
// reference vs shmem_async_when). Paper shape: similar performance; the
// win is programmability.
func BenchmarkGraph500(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := bench.Graph500Study(io.Discard, bench.Quick)
		reportSpeedup(b, fig, "Reference (polling)", "HiPER shmem_async_when")
	}
}

// ---------------- Ablation benchmarks ----------------

// BenchmarkTaskifyOverhead measures what the "taskify" pattern costs over
// calling the underlying library directly: the price of scheduling every
// MPI call as a task at the Interconnect place.
func BenchmarkTaskifyOverhead(b *testing.B) {
	world := mpi.NewWorld(2, simnet.CostModel{})
	go func() { // echo rank
		c := world.Comm(1)
		buf := make([]byte, 8)
		for {
			if st := c.Recv(buf, 0, mpi.AnyTag); st.Tag == 99 {
				return
			}
		}
	}()

	b.Run("direct", func(b *testing.B) {
		c := world.Comm(0)
		payload := make([]byte, 8)
		for i := 0; i < b.N; i++ {
			c.Send(payload, 1, 0)
		}
	})
	b.Run("taskified", func(b *testing.B) {
		rt := newRT(b)
		m := hipermpi.New(world.Comm(0), nil)
		modules.MustInstall(rt, m)
		payload := make([]byte, 8)
		rt.Launch(func(c *core.Ctx) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Send(c, payload, 1, 0)
			}
		})
		rt.Shutdown()
	})
	world.Comm(0).Send(nil, 1, 99) // stop the echo rank
}

// BenchmarkPollingVsCallbacks compares the paper's pending-list polling
// scheme against direct request callbacks for async MPI completion.
func BenchmarkPollingVsCallbacks(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts *hipermpi.Options
	}{
		{"polling", nil},
		{"callbacks", &hipermpi.Options{Callbacks: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			world := mpi.NewWorld(2, simnet.CostModel{Alpha: 20 * time.Microsecond})
			rts := make([]*core.Runtime, 2)
			ms := make([]*hipermpi.Module, 2)
			for r := 0; r < 2; r++ {
				rts[r] = newRT(b)
				ms[r] = hipermpi.New(world.Comm(r), mode.opts)
				modules.MustInstall(rts[r], ms[r])
			}
			done := make(chan struct{})
			go rts[1].Launch(func(c *core.Ctx) {
				buf := make([]byte, 8)
				for i := 0; i < b.N; i++ {
					c.Wait(ms[1].Irecv(c, buf, 0, 0))
					c.Wait(ms[1].Isend(c, buf, 0, 1))
				}
				close(done)
			})
			rts[0].Launch(func(c *core.Ctx) {
				payload := make([]byte, 8)
				buf := make([]byte, 8)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Wait(ms[0].Isend(c, payload, 1, 0))
					c.Wait(ms[0].Irecv(c, buf, 1, 1))
				}
			})
			<-done
			rts[0].Shutdown()
			rts[1].Shutdown()
		})
	}
}

// BenchmarkStealScope compares global steal paths against socket-scoped
// steal paths on a two-socket model under an imbalanced load — the pop and
// steal paths are "infinitely flexible" and encode load-balancing policy.
func BenchmarkStealScope(b *testing.B) {
	for _, scope := range []string{"global", "socket"} {
		b.Run(scope, func(b *testing.B) {
			model, err := platform.Generate(platform.MachineSpec{
				Sockets: 2, CoresPerSocket: 2, StealScope: scope, Interconnect: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			rt, err := core.New(model, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Shutdown()
			rt.Launch(func(c *core.Ctx) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// All work spawned from one task: only cross-socket
					// steals spread it under the global policy.
					c.ForasyncSync(core.Range{Lo: 0, Hi: 512, Grain: 1}, func(*core.Ctx, int) {
						busyWork(200)
					})
				}
			})
		})
	}
}

// newRT builds a 2-worker runtime through the public facade — the only
// constructor now that the deprecated NewDefault/NewFromModel shims are
// gone.
func newRT(b *testing.B) *core.Runtime {
	b.Helper()
	rt, err := hiper.New(hiper.WithWorkers(2))
	if err != nil {
		b.Fatal(err)
	}
	return rt
}

//go:noinline
func busyWork(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i * i
	}
	return s
}

// BenchmarkWorkerSubstitution measures the cost of blocking a worker on an
// unsatisfied future (substitute spawn + retire) versus an already-
// satisfied one (fast path).
func BenchmarkWorkerSubstitution(b *testing.B) {
	rt := newRT(b)
	defer rt.Shutdown()
	b.Run("satisfied", func(b *testing.B) {
		rt.Launch(func(c *core.Ctx) {
			f := core.Satisfied(rt, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Wait(f)
			}
		})
	})
	b.Run("parked", func(b *testing.B) {
		rt.Launch(func(c *core.Ctx) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := core.NewPromise(rt)
				go func() { // external satisfier: forces a real park
					time.Sleep(50 * time.Microsecond)
					p.Put(nil)
				}()
				c.Wait(p.Future())
			}
		})
	})
}

// BenchmarkUTSTaskGranularity sweeps the UTS batch size: the trade-off
// between load-balancing responsiveness (small batches, more queue and
// counter traffic) and amortization (large batches).
func BenchmarkUTSTaskGranularity(b *testing.B) {
	tree := uts.TreeConfig{B0: 4, GenMax: 10, Seed: 19}
	for _, batch := range []int{64, 256, 1024} {
		b.Run(time.Duration(batch).String()[:0]+"batch="+itoa(batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := uts.RunHiPER(uts.RunConfig{
					Tree: tree, Ranks: 4, Threads: 2, BatchSize: batch,
					Cost: simnet.CostModel{Alpha: 10 * time.Microsecond},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
