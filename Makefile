GO ?= go

.PHONY: check lint race chaos bench-smoke bench-sched bench-trace bench-comm bench-comm-gate bench-policy bench-elastic bench-supervise

## check: the tier-1 gate — vet, then the project linter, then build and
## the full test suite.
check:
	$(GO) vet ./...
	$(GO) run ./cmd/hiper-lint -audit ./...
	$(GO) build ./...
	$(GO) test ./...

## lint: run hiper-lint (the stdlib static analyzer enforcing the
## runtime's concurrency invariants) over the whole module.
lint:
	$(GO) run ./cmd/hiper-lint -audit ./...

## race: race-detector pass over the full module.
race:
	$(GO) test -race ./...

## bench-smoke: quick-scale scheduler microbenchmarks; exercises the whole
## hiper-bench -sched path without overwriting the committed report.
bench-smoke:
	$(GO) run ./cmd/hiper-bench -sched -schedout /tmp/BENCH_scheduler.smoke.json
	$(GO) run ./cmd/hiper-bench -comm -commout /tmp/BENCH_comm.smoke.json
	$(GO) run ./cmd/hiper-bench -commgate BENCH_comm.json
	$(GO) run ./cmd/hiper-bench -policygate BENCH_scheduler.json
	$(GO) run ./cmd/hiper-bench -elasticgate BENCH_elastic.json
	$(GO) run ./cmd/hiper-bench -supervisegate BENCH_supervise.json

## bench-comm-gate: rerun ping-pong + fanin-4to1 at quick scale and fail
## if any ns/op regresses >3x vs the committed BENCH_comm.json — loose
## enough to ignore noise, tight enough to catch data-plane collapse.
bench-comm-gate:
	$(GO) run ./cmd/hiper-bench -commgate BENCH_comm.json

## bench-sched: regenerate the committed BENCH_scheduler.json (full scale,
## 16 workers — the configuration recorded in EXPERIMENTS.md).
bench-sched:
	$(GO) run ./cmd/hiper-bench -sched -full -workers 16 -schedout BENCH_scheduler.json

## bench-trace: regenerate the committed BENCH_trace.json — tracing
## overhead (untraced vs armed-disabled vs enabled) on the spawn-latency
## and fanout-wake microbenchmarks.
bench-trace:
	$(GO) run ./cmd/hiper-bench -tracebench BENCH_trace.json -full -workers 16

## bench-policy: regenerate the committed BENCH_policy.json — the
## scheduling-policy A/B over the three DAG workloads (UTS, HPGMG, GEO)
## plus the default-policy seam guards.
bench-policy:
	$(GO) run ./cmd/hiper-bench -policy -full -policyout BENCH_policy.json

## bench-comm: regenerate the committed BENCH_comm.json — transport-layer
## ping-pong latency, the N-to-1 congestion-collapse curve, and the
## shared-vs-separate-fabric A/B for mixed MPI+SHMEM traffic.
bench-comm:
	$(GO) run ./cmd/hiper-bench -comm -full -commout BENCH_comm.json

## bench-elastic: regenerate the committed BENCH_elastic.json — both
## workloads (ISx, Graph500 BFS) static vs scripted kill/grow/shrink over
## the virtualized chaos fabric: per-phase wall time plus migration and
## resize latencies. Every run verifies results byte-identical.
bench-elastic:
	$(GO) run ./cmd/hiper-bench -elastic -full -elasticout BENCH_elastic.json

## bench-supervise: regenerate the committed BENCH_supervise.json — both
## workloads (ISx, Graph500 BFS) under unscripted seeded kills with
## phi-accrual supervision, at a clean wire and at 5% drop+dup:
## detection latency, MTTR, and the completed-work ratio. Every run
## verifies committed phases byte-identical.
bench-supervise:
	$(GO) run ./cmd/hiper-bench -supervise -superviseout BENCH_supervise.json

## chaos: fault-injection gate — every chaos/resilience/self-healing test
## (deterministic seeded fault plans over the Reliable layer, plus the
## detector and supervised-recovery suites) across a seed matrix: tests
## read HIPER_CHAOS_SEED so the same suite replays under each seed, and
## the seeds live here — not in the tests — so widening the matrix is a
## one-line change. Ends with a quick resilience benchmark pass that
## certifies the fan-out completes correctly under loss.
CHAOS_SEEDS ?= 42 7 1301
chaos:
	@for seed in $(CHAOS_SEEDS); do \
		echo "== chaos seed $$seed =="; \
		HIPER_CHAOS_SEED=$$seed $(GO) test -count=1 -run 'Chaos|Resilience|Reliable|Watchdog|Stall|Detector|Supervise|Evict|KillPlan' ./... || exit 1; \
	done
	$(GO) run ./cmd/hiper-bench -chaos -chaosout /tmp/BENCH_resilience.smoke.json
