GO ?= go

.PHONY: check race bench-smoke bench-sched

## check: the tier-1 gate — vet, build, and run the full test suite.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

## race: race-detector pass over the concurrency-heavy packages, including
## the deque StealBatch stress and the worker-substitution retire stress.
race:
	$(GO) test -race ./internal/deque/ ./internal/core/ ./internal/simnet/

## bench-smoke: quick-scale scheduler microbenchmarks; exercises the whole
## hiper-bench -sched path without overwriting the committed report.
bench-smoke:
	$(GO) run ./cmd/hiper-bench -sched -schedout /tmp/BENCH_scheduler.smoke.json

## bench-sched: regenerate the committed BENCH_scheduler.json (full scale,
## 16 workers — the configuration recorded in EXPERIMENTS.md).
bench-sched:
	$(GO) run ./cmd/hiper-bench -sched -full -workers 16 -schedout BENCH_scheduler.json
